package core

import (
	"testing"

	"incdata/internal/logic"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/semantics"
	"incdata/internal/table"
)

func db(t *testing.T, rows ...[]string) *table.Database {
	t.Helper()
	s := schema.MustNew(schema.WithArity("R", 2))
	d := table.NewDatabase(s)
	for _, r := range rows {
		d.MustAddRow("R", r...)
	}
	return d
}

// raQuery lifts a relational-algebra expression into a core.Query whose
// output objects are single-relation databases (so that the relational
// lattice can order them).
func raQuery(t *testing.T, e ra.Expr) Query[*table.Database, *table.Database] {
	t.Helper()
	return func(d *table.Database) (*table.Database, error) {
		rel, err := ra.Eval(e, d)
		if err != nil {
			return nil, err
		}
		out := table.NewDatabase(schema.MustNew(schema.WithArity("Ans", rel.Arity())))
		for _, tp := range rel.Tuples() {
			out.MustAdd("Ans", tp)
		}
		return out, nil
	}
}

// worldsOf enumerates the CWA worlds of d over its adom plus two fresh
// constants, as a finite sample of [[d]]cwa.  Two fresh constants are
// needed so that the greatest lower bound of the answers can "see" that a
// null is not forced to any particular constant.
func worldsOf(d *table.Database) []*table.Database {
	var out []*table.Database
	dom := semantics.DomainOf(d, 2)
	semantics.EnumerateCWA(d, dom, func(w *table.Database) bool {
		out = append(out, w)
		return true
	})
	return out
}

func TestDomainAxioms(t *testing.T) {
	x := db(t, []string{"1", "⊥1"}, []string{"⊥1", "2"})
	completes := worldsOf(x)
	objects := append([]*table.Database{x}, completes...)
	for _, rd := range []RelationalDomain{OWADomain(), CWADomain(), {Assumption: semantics.WCWA}} {
		if err := rd.CheckAxioms(objects, completes); err != nil {
			t.Errorf("%v: %v", rd.Assumption, err)
		}
	}
	// Axiom violations are reported.
	rd := OWADomain()
	if err := rd.CheckAxioms(nil, []*table.Database{x}); err == nil {
		t.Error("an incomplete database must not pass as a complete object")
	}
}

func TestDomainOrderingAndEquivalence(t *testing.T) {
	less := db(t, []string{"1", "⊥1"})
	more := db(t, []string{"1", "2"})
	owa := OWADomain()
	cwa := CWADomain()
	if !owa.Leq(less, more) || !cwa.Leq(less, more) {
		t.Error("valuation image should be above the incomplete database")
	}
	if owa.Leq(more, less) {
		t.Error("complete database should not be below the incomplete one under OWA")
	}
	if !owa.IsComplete(more) || owa.IsComplete(less) {
		t.Error("IsComplete wrong")
	}
	if !owa.Represents(less, more) || !cwa.Represents(less, more) {
		t.Error("Represents should hold for the valuation image")
	}
	other := db(t, []string{"1", "⊥2"})
	if !owa.Equivalent(less, other) {
		t.Error("renaming a null is an information equivalence under OWA")
	}
	wcwa := RelationalDomain{Assumption: semantics.WCWA}
	if !wcwa.Leq(less, more) {
		t.Error("WCWA ordering should relate the pair")
	}
	bad := RelationalDomain{Assumption: semantics.Assumption(99)}
	if bad.Leq(less, more) {
		t.Error("unknown assumption should order nothing")
	}
}

func TestCertainOAndLattice(t *testing.T) {
	l := OWALattice()
	worlds := []*table.Database{
		db(t, []string{"1", "2"}, []string{"2", "5"}),
		db(t, []string{"1", "2"}, []string{"2", "6"}),
	}
	glb, err := CertainO[*table.Database](l, worlds)
	if err != nil {
		t.Fatal(err)
	}
	// The GLB keeps the common tuple and a partially known one.
	if !glb.Relation("R").Contains(table.MustParseTuple("1", "2")) {
		t.Errorf("GLB should keep (1,2): %v", glb)
	}
	if !l.Leq(glb, worlds[0]) || !l.Leq(glb, worlds[1]) {
		t.Error("GLB must be a lower bound")
	}
	if _, err := CertainO[*table.Database](l, nil); err == nil {
		t.Error("certainO of empty set should error")
	}
	if _, err := l.GLB(nil); err == nil {
		t.Error("GLB of empty set should error")
	}
}

// The naïve-evaluation theorem (equation (9)) verified on small instances:
// for the monotone generic query π_#1(R), certainO(Q, D) over the CWA world
// sample is equivalent to Q(D).
func TestNaiveEvaluationTheoremForMonotoneQuery(t *testing.T) {
	q := raQuery(t, ra.Project{Input: ra.Base("R"), Attrs: []string{"#1"}})
	instances := []*table.Database{
		db(t, []string{"1", "⊥1"}, []string{"⊥1", "2"}),
		db(t, []string{"1", "2"}, []string{"2", "⊥1"}),
		db(t, []string{"⊥1", "⊥2"}),
	}
	l := OWALattice()
	for _, x := range instances {
		holds, err := NaiveEvaluationHolds[*table.Database, *table.Database](l, q, x, worldsOf(x))
		if err != nil {
			t.Fatal(err)
		}
		if !holds {
			t.Errorf("theorem should hold on %v", x)
		}
	}
}

// A non-monotone query (difference) violates both monotonicity and the
// naïve-evaluation theorem; the framework detects both.
func TestTheoremFailsForNonMonotoneQuery(t *testing.T) {
	s := schema.MustNew(schema.WithArity("R", 2), schema.WithArity("S", 2))
	mk := func(rRows, sRows [][]string) *table.Database {
		d := table.NewDatabase(s)
		for _, r := range rRows {
			d.MustAddRow("R", r...)
		}
		for _, r := range sRows {
			d.MustAddRow("S", r...)
		}
		return d
	}
	qDiff := raQuery(t, ra.Diff{Left: ra.Base("R"), Right: ra.Base("S")})
	din := OWADomain()
	l := OWALattice()

	// Sample: x ⪯ y where y adds a tuple to S, shrinking the difference.
	x := mk([][]string{{"1", "2"}}, nil)
	y := mk([][]string{{"1", "2"}}, [][]string{{"1", "2"}})
	mono, witness, err := IsMonotone[*table.Database, *table.Database](din, l, qDiff, []*table.Database{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if mono || witness == nil {
		t.Error("difference should be detected as non-monotone")
	}

	// And the theorem fails on the π_A(R−S) instance of the paper.
	inst := mk([][]string{{"1", "⊥1"}}, [][]string{{"1", "⊥2"}})
	qProjDiff := raQuery(t, ra.Project{Input: ra.Diff{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"#1"}})
	holds, err := NaiveEvaluationHolds[*table.Database, *table.Database](l, qProjDiff, inst, worldsOf(inst))
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("theorem must fail for π_A(R−S)")
	}
}

func TestIsMonotoneHoldsForPositive(t *testing.T) {
	q := raQuery(t, ra.Base("R"))
	din := OWADomain()
	l := OWALattice()
	sample := []*table.Database{
		db(t, []string{"1", "⊥1"}),
		db(t, []string{"1", "2"}),
		db(t, []string{"1", "2"}, []string{"3", "4"}),
	}
	mono, witness, err := IsMonotone[*table.Database, *table.Database](din, l, q, sample)
	if err != nil {
		t.Fatal(err)
	}
	if !mono || witness != nil {
		t.Errorf("identity query should be monotone, witness = %v", witness)
	}
}

func TestQueryErrorsPropagate(t *testing.T) {
	bad := raQuery(t, ra.Base("Nope"))
	l := OWALattice()
	x := db(t, []string{"1", "2"})
	if _, err := CertainOQuery[*table.Database, *table.Database](l, bad, []*table.Database{x}); err == nil {
		t.Error("CertainOQuery should propagate query errors")
	}
	if _, err := CertainOQuery[*table.Database, *table.Database](l, bad, nil); err == nil {
		t.Error("CertainOQuery with empty sample should error")
	}
	if _, _, err := IsMonotone[*table.Database, *table.Database](OWADomain(), l, bad, []*table.Database{x, x.Clone()}); err == nil {
		t.Error("IsMonotone should propagate query errors")
	}
	if _, err := NaiveEvaluationHolds[*table.Database, *table.Database](l, bad, x, []*table.Database{x}); err == nil {
		t.Error("NaiveEvaluationHolds should propagate query errors")
	}
	// Error on the naive-evaluation side (worlds fine, x bad).
	good := raQuery(t, ra.Base("R"))
	otherSchema := table.NewDatabase(schema.MustNew(schema.WithArity("S", 1)))
	if _, err := NaiveEvaluationHolds[*table.Database, *table.Database](l, good, otherSchema, []*table.Database{x}); err == nil {
		t.Error("NaiveEvaluationHolds should propagate errors from Q(x)")
	}
	// IsMonotone: error on the second query evaluation.
	mixed := func(d *table.Database) (*table.Database, error) {
		if d.Relation("R").Len() > 1 {
			return nil, errFake
		}
		return d, nil
	}
	big := db(t, []string{"1", "2"}, []string{"3", "4"})
	small := db(t, []string{"1", "2"})
	if _, _, err := IsMonotone[*table.Database, *table.Database](OWADomain(), l, mixed, []*table.Database{small, big}); err == nil {
		t.Error("IsMonotone should propagate errors from Q on the larger object")
	}
}

var errFake = schemaErr{}

type schemaErr struct{}

func (schemaErr) Error() string { return "fake error" }

// certainK: the certain knowledge about [[x]] is δ_x, and for monotone
// queries the certain knowledge about the answers is the diagram of the
// naïve answer (equation (10)).
func TestCertainK(t *testing.T) {
	x := db(t, []string{"1", "⊥1"})
	owa := OWADomain()
	cwa := CWADomain()
	kOWA := owa.CertainK(x)
	kCWA := cwa.CertainK(x)
	if !logic.IsExistentialPositive(kOWA) {
		t.Error("OWA certainK should be existential positive")
	}
	if !logic.IsPosForallG(kCWA) || logic.IsExistentialPositive(kCWA) {
		t.Error("CWA certainK should be Pos∀G and not existential positive")
	}
	// Every world of x models certainK(x); a non-world does not model the
	// CWA knowledge.
	for _, w := range worldsOf(x) {
		if ok, err := logic.EvalSentence(kOWA, w); err != nil || !ok {
			t.Errorf("world %v should model OWA certainK: %v %v", w, ok, err)
		}
		if ok, err := logic.EvalSentence(kCWA, w); err != nil || !ok {
			t.Errorf("world %v should model CWA certainK: %v %v", w, ok, err)
		}
	}
	nonWorld := db(t, []string{"1", "2"}, []string{"3", "4"})
	if ok, _ := logic.EvalSentence(kCWA, nonWorld); ok {
		t.Error("a database with an extra tuple is not a CWA world and must not model δ^cwa")
	}
	if ok, _ := logic.EvalSentence(kOWA, nonWorld); !ok {
		t.Error("the same database is an OWA world and must model δ^owa")
	}
}
