// Package core implements the paper's primary contribution (Sections 5 and
// 6): a minimalist, data-model-independent framework of representation
// systems in which certainty has two faces —
//
//	certainO X = ⋀ X          (an object: the greatest lower bound of X in
//	                           the information ordering), and
//	certainK X = ⋀ Th(X)      (knowledge: the most specific formula implied
//	                           by every object of X),
//
// and the central theorem holds: for monotone generic queries, naïve
// evaluation computes both, i.e. certainO(Q,x) = Q(x) and
// certainK(Q,x) = δ_{Q(x)} (equations (9) and (10)).
//
// The framework is expressed with Go generics over an abstract object type;
// the package also provides the two relational instantiations the paper
// uses as its testbed (OWA and CWA over naïve databases) and a finite
// verification harness for monotonicity, genericity and the theorem, used
// by experiment E11.
package core

import (
	"fmt"

	"incdata/internal/hom"
	"incdata/internal/logic"
	"incdata/internal/order"
	"incdata/internal/semantics"
	"incdata/internal/table"
)

// Domain abstracts the triple ⟨D, C, [[·]]⟩ of Section 5.1: a set of
// objects, the complete objects among them, and the semantics function,
// together with the induced information ordering x ⪯ y ⇔ [[y]] ⊆ [[x]].
//
// Implementations must guarantee the two axioms of the paper:
//
//  1. every complete object denotes at least itself (c ∈ [[c]]), and
//  2. a complete object is more informative than any object representing it
//     (c ∈ [[x]] ⇒ x ⪯ c).
type Domain[O any] interface {
	// IsComplete reports whether the object belongs to C.
	IsComplete(x O) bool
	// Represents reports whether the complete object c belongs to [[x]].
	Represents(x, c O) bool
	// Leq is the information ordering: x ⪯ y.
	Leq(x, y O) bool
	// Equivalent reports that x and y carry the same information
	// (x ⪯ y and y ⪯ x).
	Equivalent(x, y O) bool
}

// Lattice extends a Domain with greatest lower bounds of finite sets, the
// ingredient needed to build certainO.
type Lattice[O any] interface {
	Domain[O]
	// GLB returns the greatest lower bound of a nonempty finite set.
	GLB(xs []O) (O, error)
}

// Query is a mapping between two domains (the paper's Q : D → D').
type Query[I, O any] func(I) (O, error)

// CertainO computes the object-level certainty of a finite set of objects:
// its greatest lower bound in the information ordering.
func CertainO[O any](l Lattice[O], xs []O) (O, error) {
	var zero O
	if len(xs) == 0 {
		return zero, fmt.Errorf("core: certainO of an empty set is undefined")
	}
	return l.GLB(xs)
}

// CertainOQuery computes certainO(Q, x) over an explicitly given finite
// sample of [[x]]: it applies Q to every world in the sample and takes the
// greatest lower bound of the answers.  With a sample that is sufficient
// for the query (for generic relational queries: all valuations into adom
// plus enough fresh constants), this is exactly certainO(Q,x).
func CertainOQuery[I, O any](l Lattice[O], q Query[I, O], worlds []I) (O, error) {
	var zero O
	if len(worlds) == 0 {
		return zero, fmt.Errorf("core: empty world sample")
	}
	answers := make([]O, len(worlds))
	for i, w := range worlds {
		a, err := q(w)
		if err != nil {
			return zero, err
		}
		answers[i] = a
	}
	return l.GLB(answers)
}

// IsMonotone checks monotonicity of a query on an explicit finite sample of
// ordered pairs: whenever x ⪯ y in the input domain, Q(x) ⪯' Q(y) must hold
// in the output domain.  It returns the first counterexample found.
func IsMonotone[I, O any](din Domain[I], dout Domain[O], q Query[I, O], sample []I) (bool, *MonotonicityWitness[I], error) {
	for i := range sample {
		for j := range sample {
			if i == j || !din.Leq(sample[i], sample[j]) {
				continue
			}
			qi, err := q(sample[i])
			if err != nil {
				return false, nil, err
			}
			qj, err := q(sample[j])
			if err != nil {
				return false, nil, err
			}
			if !dout.Leq(qi, qj) {
				return false, &MonotonicityWitness[I]{Less: sample[i], More: sample[j]}, nil
			}
		}
	}
	return true, nil, nil
}

// MonotonicityWitness is a counterexample to monotonicity: Less ⪯ More in
// the input ordering but Q(Less) ⋠ Q(More) in the output ordering.
type MonotonicityWitness[I any] struct {
	Less, More I
}

// NaiveEvaluationHolds verifies equation (9) on one object: it computes
// certainO(Q, x) from the given world sample and checks that it is
// equivalent (in the output ordering) to Q(x), the naïvely evaluated
// answer.  For monotone generic queries and sufficient samples the theorem
// guarantees this returns true.
func NaiveEvaluationHolds[I, O any](lout Lattice[O], q Query[I, O], x I, worlds []I) (bool, error) {
	glb, err := CertainOQuery(lout, q, worlds)
	if err != nil {
		return false, err
	}
	qx, err := q(x)
	if err != nil {
		return false, err
	}
	return lout.Equivalent(glb, qx), nil
}

// ---------------------------------------------------------------------------
// Relational instantiations.
// ---------------------------------------------------------------------------

// RelationalDomain is the relational instantiation of Domain: objects are
// naïve databases, complete objects are null-free databases, the semantics
// is [[·]]owa / [[·]]cwa / [[·]]wcwa, and the ordering is the corresponding
// homomorphism preorder of Section 5.2.
type RelationalDomain struct {
	Assumption semantics.Assumption
}

// OWADomain is the relational OWA domain.
func OWADomain() RelationalDomain { return RelationalDomain{Assumption: semantics.OWA} }

// CWADomain is the relational CWA domain.
func CWADomain() RelationalDomain { return RelationalDomain{Assumption: semantics.CWA} }

// IsComplete implements Domain.
func (rd RelationalDomain) IsComplete(x *table.Database) bool { return x.IsComplete() }

// Represents implements Domain.
func (rd RelationalDomain) Represents(x, c *table.Database) bool {
	return semantics.Represents(rd.Assumption, x, c)
}

// Leq implements Domain.
func (rd RelationalDomain) Leq(x, y *table.Database) bool {
	switch rd.Assumption {
	case semantics.OWA:
		return hom.LeqOWA(x, y)
	case semantics.CWA:
		return hom.LeqCWA(x, y)
	case semantics.WCWA:
		return hom.LeqWCWA(x, y)
	default:
		return false
	}
}

// Equivalent implements Domain.
func (rd RelationalDomain) Equivalent(x, y *table.Database) bool {
	return rd.Leq(x, y) && rd.Leq(y, x)
}

// CheckAxioms verifies the two domain axioms of Section 5.1 on a finite
// sample of objects and worlds; it is used by tests and experiment E11.
func (rd RelationalDomain) CheckAxioms(objects, completes []*table.Database) error {
	for _, c := range completes {
		if !rd.IsComplete(c) {
			return fmt.Errorf("core: %v is not complete", c)
		}
		if !rd.Represents(c, c) {
			return fmt.Errorf("core: axiom 1 fails: %v ∉ [[itself]]", c)
		}
	}
	for _, x := range objects {
		for _, c := range completes {
			if rd.Represents(x, c) && !rd.Leq(x, c) {
				return fmt.Errorf("core: axiom 2 fails: %v ∈ [[%v]] but not above it", c, x)
			}
		}
	}
	return nil
}

// RelationalOWALattice adds greatest lower bounds (direct product reduced
// to the core) to the relational OWA domain, giving the Lattice needed for
// certainO.  GLBs in the CWA ordering do not exist in general, which is why
// the paper computes certainO of query answers in the OWA ordering on
// answers even when the inputs are interpreted under CWA.
type RelationalOWALattice struct {
	RelationalDomain
}

// OWALattice builds the OWA lattice.
func OWALattice() RelationalOWALattice {
	return RelationalOWALattice{RelationalDomain: OWADomain()}
}

// GLB implements Lattice via the direct-product construction of package
// order, reduced to its core for a small canonical representative.
func (RelationalOWALattice) GLB(xs []*table.Database) (*table.Database, error) {
	glb, err := order.GLBOWA(xs)
	if err != nil {
		return nil, err
	}
	return hom.Core(glb), nil
}

// CertainK computes the knowledge-level certainty of an incomplete
// database: the formula δ_x describing [[x]] in the representation system's
// logic — existential positive for OWA (equation (5)), Pos∀G for CWA.  By
// the theorem of Section 6.1, for monotone generic queries
// certainK(Q, x) = δ_{Q(x)}, so the certain knowledge about the answer is
// obtained by naïvely evaluating the query and taking the diagram of the
// result.
func (rd RelationalDomain) CertainK(x *table.Database) logic.Formula {
	if rd.Assumption == semantics.CWA {
		return logic.CWADiagram(x)
	}
	return logic.OWADiagram(x)
}

// Interface conformance checks.
var (
	_ Domain[*table.Database]  = RelationalDomain{}
	_ Lattice[*table.Database] = RelationalOWALattice{}
)
