package order

import (
	"testing"

	"incdata/internal/table"
)

func tup(fields ...string) table.Tuple { return table.MustParseTuple(fields...) }

func TestTupleLeq(t *testing.T) {
	cases := []struct {
		a, b table.Tuple
		want bool
	}{
		{tup("1", "2"), tup("1", "2"), true},     // reflexive on constants
		{tup("⊥1", "2"), tup("1", "2"), true},    // null refines to constant
		{tup("⊥1", "⊥2"), tup("1", "2"), true},   // independent nulls
		{tup("⊥1", "⊥1"), tup("1", "1"), true},   // repeated null, consistent image
		{tup("⊥1", "⊥1"), tup("1", "2"), false},  // repeated null, inconsistent image
		{tup("1", "2"), tup("⊥1", "2"), false},   // constants never map to nulls
		{tup("⊥1", "2"), tup("⊥7", "2"), true},   // null renames to another null
		{tup("1"), tup("1", "2"), false},         // arity mismatch
		{tup("⊥1", "5"), tup("1", "6"), false},   // constant mismatch
		{tup("⊥1", "⊥2"), tup("⊥2", "⊥1"), true}, // null swap both ways
		{tup("⊥2", "⊥1"), tup("⊥1", "⊥2"), true}, // ... is an equivalence
	}
	for _, c := range cases {
		if got := TupleLeq(c.a, c.b); got != c.want {
			t.Errorf("TupleLeq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTupleGLBComparable(t *testing.T) {
	al := NewGLBAlloc(100)
	a, b := tup("⊥1", "2"), tup("1", "2")
	g := al.TupleGLB(a, b)
	if !g.Equal(a) {
		t.Fatalf("GLB of comparable tuples = %v, want the smaller %v", g, a)
	}
	if g2 := al.TupleGLB(b, a); !g2.Equal(a) {
		t.Fatalf("GLB must be symmetric: %v, want %v", g2, a)
	}
}

func TestTupleGLBIncomparable(t *testing.T) {
	al := NewGLBAlloc(100)
	a, b := tup("1", "⊥1"), tup("⊥1", "2")
	g := al.TupleGLB(a, b)
	// The GLB must be below both sides and keep nothing they disagree on.
	if !TupleLeq(g, a) || !TupleLeq(g, b) {
		t.Fatalf("GLB %v is not below both %v and %v", g, a, b)
	}
	for i, v := range g {
		if v.IsConst() && (v != a[i] || v != b[i]) {
			t.Fatalf("GLB %v keeps constant the sides disagree on at %d", g, i)
		}
	}
}

// TestTupleGLBSharedDisagreement pins the allocator's consistency: the
// same pair of disagreeing component values yields the same fresh null
// across positions and across tuples.
func TestTupleGLBSharedDisagreement(t *testing.T) {
	al := NewGLBAlloc(500)
	// Both pairs are incomparable (each side keeps a constant the other
	// lacks) and disagree with the same (100, ⊥2) pair in position 0.
	g1 := al.TupleGLB(tup("100", "⊥9"), tup("⊥2", "7"))
	g2 := al.TupleGLB(tup("100", "⊥8"), tup("⊥2", "5"))
	if !g1[0].IsNull() || g1[0] != g2[0] {
		t.Fatalf("same disagreement pair must share a null: %v vs %v", g1[0], g2[0])
	}
	if g1[0].NullID() < 500 {
		t.Fatalf("fresh null id %d collides with the reserved range", g1[0].NullID())
	}
	// A different pair allocates a different null.
	if g1[1] == g1[0] || !g1[1].IsNull() {
		t.Fatalf("distinct disagreement pairs must get distinct nulls: %v", g1)
	}
}
