package order

// Tuple-level informativeness: the orderings of Section 3 restricted to
// single tuples, which is what version merges (internal/version) reconcile
// with.  A tuple t is below a tuple u — u is a refinement of t — when a
// mapping of t's marked nulls onto u's values turns t into u position by
// position; constants must match exactly and a null occurring twice in t
// must map to one value.  Greatest lower bounds of two tuples always exist
// and are computed position-wise exactly like GLBOWA's direct product:
// positions where both sides agree keep their value, disagreeing positions
// become a marked null identified by the pair of component values, so the
// same disagreement yields the same null everywhere in one merge.

import (
	"incdata/internal/table"
	"incdata/internal/value"
)

// TupleLeq reports t ⪯ u in the tuple-level informativeness order: some
// mapping of t's nulls to values sends t to u position-wise.  Tuples of
// different arities are unrelated.
func TupleLeq(t, u table.Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	var h map[value.Value]value.Value
	for i, v := range t {
		if v.IsConst() {
			if v != u[i] {
				return false
			}
			continue
		}
		if h == nil {
			h = make(map[value.Value]value.Value, len(t))
		}
		if img, ok := h[v]; ok {
			if img != u[i] {
				return false
			}
			continue
		}
		h[v] = u[i]
	}
	return true
}

// TuplesComparable reports whether t and u are related (in either
// direction) by the tuple-level informativeness order.
func TuplesComparable(t, u table.Tuple) bool {
	return TupleLeq(t, u) || TupleLeq(u, t)
}

// GLBAlloc allocates the combination nulls of tuple-level GLBs with
// consistent identities: within one allocator, the same pair of disagreeing
// component values always yields the same marked null.  Version merges keep
// one allocator per merge so reconciled tuples share nulls exactly when
// their disagreements coincide.
type GLBAlloc struct {
	next    uint64
	nullFor map[string]value.Value
	keyBuf  []byte
}

// NewGLBAlloc returns an allocator issuing null ids starting at next (the
// caller passes one past the largest null id in scope, e.g.
// value.MaxNullID over both databases being merged).
func NewGLBAlloc(next uint64) *GLBAlloc {
	return &GLBAlloc{next: next, nullFor: map[string]value.Value{}}
}

// combinationNull returns the marked null identified by the component pair
// (a, b), allocating it on first use.
func (al *GLBAlloc) combinationNull(a, b value.Value) value.Value {
	al.keyBuf = b.AppendKey(a.AppendKey(al.keyBuf[:0]))
	key := string(al.keyBuf)
	if n, ok := al.nullFor[key]; ok {
		return n
	}
	n := value.Null(al.next)
	al.next++
	al.nullFor[key] = n
	return n
}

// TupleGLB returns the greatest lower bound of t and u in the tuple-level
// informativeness order.  Comparable tuples return the less informative
// side unchanged (the exact minimum, no fresh nulls); incomparable tuples
// get the position-wise product: agreeing positions keep their value,
// disagreeing positions become the allocator's combination null for the
// pair.  The result is below both inputs, and any tuple below both maps
// into it.  It panics on arity mismatch — callers pair tuples of one
// relation.
func (al *GLBAlloc) TupleGLB(t, u table.Tuple) table.Tuple {
	if len(t) != len(u) {
		panic("order: TupleGLB of different arities")
	}
	if TupleLeq(t, u) {
		return t
	}
	if TupleLeq(u, t) {
		return u
	}
	out := make(table.Tuple, len(t))
	for i := range t {
		if t[i] == u[i] {
			out[i] = t[i]
			continue
		}
		out[i] = al.combinationNull(t[i], u[i])
	}
	return out
}
