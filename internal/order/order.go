// Package order implements the information orderings of Sections 3 and 5 of
// the paper and the greatest-lower-bound constructions that turn certainty
// into an object (certainO):
//
//	x ⪯ y  ⇔  [[y]] ⊆ [[x]]    ("y is more informative than x")
//
// For relational databases under OWA the ordering is the homomorphism
// preorder, and greatest lower bounds of finite sets of databases exist and
// are computed by the direct-product construction.  Under CWA the ordering
// is the strong-onto-homomorphism preorder; lower bounds are checked
// directly.  The paper's Section 5.3 example — where the intersection-based
// certain answer fails to be a ⪯cwa lower bound — is reproduced in the
// tests and in experiment E8.
package order

import (
	"fmt"
	"sort"

	"incdata/internal/hom"
	"incdata/internal/table"
	"incdata/internal/value"
)

// LeqOWA reports x ⪯owa y (a homomorphism x → y exists).
func LeqOWA(x, y *table.Database) bool { return hom.LeqOWA(x, y) }

// LeqCWA reports x ⪯cwa y (a strong onto homomorphism x → y exists).
func LeqCWA(x, y *table.Database) bool { return hom.LeqCWA(x, y) }

// LeqWCWA reports x ⪯wcwa y (an onto homomorphism x → y exists).
func LeqWCWA(x, y *table.Database) bool { return hom.LeqWCWA(x, y) }

// Ordering selects one of the information orderings.
type Ordering uint8

// The three orderings studied in the paper.
const (
	OWA Ordering = iota
	CWA
	WCWA
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case OWA:
		return "⪯owa"
	case CWA:
		return "⪯cwa"
	case WCWA:
		return "⪯wcwa"
	default:
		return fmt.Sprintf("Ordering(%d)", uint8(o))
	}
}

// Leq dispatches on the ordering.
func Leq(o Ordering, x, y *table.Database) bool {
	switch o {
	case OWA:
		return LeqOWA(x, y)
	case CWA:
		return LeqCWA(x, y)
	case WCWA:
		return LeqWCWA(x, y)
	default:
		return false
	}
}

// IsLowerBound reports whether cand ⪯ d for every d in dbs.
func IsLowerBound(o Ordering, cand *table.Database, dbs []*table.Database) bool {
	for _, d := range dbs {
		if !Leq(o, cand, d) {
			return false
		}
	}
	return true
}

// IsGreatestLowerBound reports whether cand is a lower bound of dbs that is
// at least as informative as every other candidate in others (a finite
// verification of the glb property used by tests and experiments).
func IsGreatestLowerBound(o Ordering, cand *table.Database, dbs, others []*table.Database) bool {
	if !IsLowerBound(o, cand, dbs) {
		return false
	}
	for _, other := range others {
		if IsLowerBound(o, other, dbs) && !Leq(o, other, cand) {
			return false
		}
	}
	return true
}

// GLBOWA computes the greatest lower bound of a nonempty finite set of
// databases in the ⪯owa (homomorphism) ordering via the direct-product
// construction: the product database has one tuple per combination of
// tuples (one from each input) in the same relation; positions where all
// components agree on a constant keep that constant, all other positions
// become a marked null identified by the vector of component values.
//
// The product is folded pairwise, reducing each intermediate result to its
// core, so that the size of the GLB stays proportional to its information
// content rather than growing as the product of all input sizes.  The
// result is the certainO object for the set under OWA: it is below every
// input, and every database below all inputs maps homomorphically into it.
func GLBOWA(dbs []*table.Database) (*table.Database, error) {
	if len(dbs) == 0 {
		return nil, fmt.Errorf("order: GLB of an empty set is undefined")
	}
	if len(dbs) == 1 {
		return dbs[0].Clone(), nil
	}
	acc := dbs[0].Clone()
	for _, next := range dbs[1:] {
		prod, err := directProduct([]*table.Database{acc, next})
		if err != nil {
			return nil, err
		}
		acc = coreIfSmall(prod)
	}
	return acc, nil
}

// coreNullBudget bounds the number of nulls for which intermediate core
// reduction is attempted.  Core computation performs repeated homomorphism
// searches, which are exponential in the number of nulls in the worst case;
// beyond the budget the raw product is kept — it is still a greatest lower
// bound, just not the minimal representative.
const coreNullBudget = 12

func coreIfSmall(d *table.Database) *table.Database {
	if len(d.Nulls()) > coreNullBudget {
		return d
	}
	return hom.Core(d)
}

// directProduct builds the direct product of the given databases (two or
// more) without any reduction.
func directProduct(dbs []*table.Database) (*table.Database, error) {
	first := dbs[0]
	out := table.NewDatabase(first.Schema())
	// Null ids for combination vectors are allocated deterministically.
	nullFor := map[string]value.Value{}
	nextID := maxNullID(dbs) + 1
	var keyBuf []byte
	combinationNull := func(vals []value.Value) value.Value {
		var key string
		keyBuf, key = vectorKey(keyBuf, vals)
		if n, ok := nullFor[key]; ok {
			return n
		}
		n := value.Null(nextID)
		nextID++
		nullFor[key] = n
		return n
	}

	for _, relName := range first.RelationNames() {
		arity := first.Relation(relName).Arity()
		// Tuple lists per database; if any database has an empty relation the
		// product is empty.
		lists := make([][]table.Tuple, len(dbs))
		empty := false
		for i, d := range dbs {
			rel := d.Relation(relName)
			if rel == nil || rel.Len() == 0 {
				empty = true
				break
			}
			lists[i] = rel.SortedTuples()
		}
		if empty {
			continue
		}
		// Enumerate the cartesian product of the tuple lists.
		idx := make([]int, len(dbs))
		vals := make([]value.Value, len(dbs))
		for {
			combined := make(table.Tuple, arity)
			for pos := 0; pos < arity; pos++ {
				allSameConst := true
				for i := range dbs {
					vals[i] = lists[i][idx[i]][pos]
					if vals[i].IsNull() || vals[i] != vals[0] {
						allSameConst = false
					}
				}
				if allSameConst {
					combined[pos] = vals[0]
				} else {
					combined[pos] = combinationNull(vals)
				}
			}
			if err := out.Add(relName, combined); err != nil {
				return nil, err
			}
			// Advance the odometer.
			i := len(idx) - 1
			for i >= 0 {
				idx[i]++
				if idx[i] < len(lists[i]) {
					break
				}
				idx[i] = 0
				i--
			}
			if i < 0 {
				break
			}
		}
	}
	return out, nil
}

// vectorKey encodes a component-value vector with the self-delimiting
// binary value encoding (no string rendering; distinct vectors get
// distinct keys by construction).
func vectorKey(buf []byte, vals []value.Value) ([]byte, string) {
	buf = buf[:0]
	for _, v := range vals {
		buf = v.AppendKey(buf)
	}
	return buf, string(buf)
}

func maxNullID(dbs []*table.Database) uint64 {
	var max uint64
	for _, d := range dbs {
		for n := range d.Nulls() {
			if n.NullID() > max {
				max = n.NullID()
			}
		}
	}
	return max
}

// GLBRelationsOWA is GLBOWA specialised to single relations sharing a
// schema; it is convenient for query answers, which are relations rather
// than databases.  The raw direct product contains many hom-redundant
// tuples, so the result is reduced to its core, giving a small canonical
// representative of the greatest lower bound (unique up to isomorphism).
func GLBRelationsOWA(rels []*table.Relation) (*table.Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("order: GLB of an empty set is undefined")
	}
	// The GLB is order-independent up to null renaming, but the direct
	// product assigns combination-null ids by first encounter, so the
	// concrete representative depends on the input order.  Parallel world
	// collection hands the answers over in scheduling order; sort them
	// canonically so the same answer set always yields the same nulls.
	rels = append([]*table.Relation(nil), rels...)
	sort.Slice(rels, func(i, j int) bool { return rels[i].CanonicalKey() < rels[j].CanonicalKey() })
	dbs := make([]*table.Database, len(rels))
	for i, r := range rels {
		d, err := singletonDB(r)
		if err != nil {
			return nil, err
		}
		dbs[i] = d
	}
	glb, err := GLBOWA(dbs)
	if err != nil {
		return nil, err
	}
	return coreIfSmall(glb).Relation(answerRelName), nil
}

// IntersectionRelations computes the plain tuple intersection of relations,
// which is the standard intersection-based certain answer (equation (1) of
// the paper) when applied to the query answers over all worlds.  It is
// provided for comparison with the ordering-based notions.
func IntersectionRelations(rels []*table.Relation) (*table.Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("order: intersection of an empty set is undefined")
	}
	out := rels[0].Clone()
	for _, r := range rels[1:] {
		if r.Arity() != out.Arity() {
			return nil, fmt.Errorf("order: intersection of arities %d and %d", out.Arity(), r.Arity())
		}
		out = out.Filter(func(t table.Tuple) bool { return r.Contains(t) })
	}
	return out, nil
}

const answerRelName = "__answer__"

func singletonDB(r *table.Relation) (*table.Database, error) {
	s, err := newSingletonSchema(r.Arity())
	if err != nil {
		return nil, err
	}
	d := table.NewDatabase(s)
	var addErr error
	r.Each(func(t table.Tuple) bool {
		addErr = d.Add(answerRelName, t)
		return addErr == nil
	})
	if addErr != nil {
		return nil, addErr
	}
	return d, nil
}

// MoreInformativeSort orders databases from least to most informative under
// the given ordering using a stable topological-ish sort: d1 before d2 when
// d1 ⪯ d2 and not d2 ⪯ d1.  Ties keep the input order.  It is a reporting
// convenience for the experiments.
func MoreInformativeSort(o Ordering, dbs []*table.Database) []*table.Database {
	out := append([]*table.Database(nil), dbs...)
	sort.SliceStable(out, func(i, j int) bool {
		return Leq(o, out[i], out[j]) && !Leq(o, out[j], out[i])
	})
	return out
}
