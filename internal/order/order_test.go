package order

import (
	"testing"

	"incdata/internal/hom"
	"incdata/internal/schema"
	"incdata/internal/table"
)

func db(t *testing.T, rows ...[]string) *table.Database {
	t.Helper()
	arity := 2
	if len(rows) > 0 {
		arity = len(rows[0])
	}
	s := schema.MustNew(schema.WithArity("R", arity))
	d := table.NewDatabase(s)
	for _, r := range rows {
		d.MustAddRow("R", r...)
	}
	return d
}

func rel(t *testing.T, rows ...[]string) *table.Relation {
	t.Helper()
	arity := 2
	if len(rows) > 0 {
		arity = len(rows[0])
	}
	r := table.NewRelationArity("A", arity)
	for _, row := range rows {
		r.MustAdd(table.MustParseTuple(row...))
	}
	return r
}

func TestOrderingDispatchAndString(t *testing.T) {
	x := db(t, []string{"1", "⊥1"})
	y := db(t, []string{"1", "2"})
	if !Leq(OWA, x, y) || !Leq(CWA, x, y) || !Leq(WCWA, x, y) {
		t.Error("x should be below its valuation image in all orderings")
	}
	if Leq(Ordering(99), x, y) {
		t.Error("unknown ordering should be false")
	}
	if OWA.String() != "⪯owa" || CWA.String() != "⪯cwa" || WCWA.String() != "⪯wcwa" || Ordering(99).String() == "" {
		t.Error("Ordering strings wrong")
	}
	if !LeqOWA(x, y) || !LeqCWA(x, y) || !LeqWCWA(x, y) {
		t.Error("direct ordering functions disagree")
	}
}

// Section 5.3: R = {(1,2),(2,⊥)} and the intersection-based certain answer
// {(1,2)}.  Under ⪯owa the intersection is a lower bound of every
// valuation image; under ⪯cwa it is not.
func TestPaperSection53Example(t *testing.T) {
	worlds := []*table.Database{
		db(t, []string{"1", "2"}, []string{"2", "5"}),
		db(t, []string{"1", "2"}, []string{"2", "6"}),
		db(t, []string{"1", "2"}, []string{"2", "2"}),
	}
	intersection := db(t, []string{"1", "2"})
	r := db(t, []string{"1", "2"}, []string{"2", "⊥1"})

	if !IsLowerBound(OWA, intersection, worlds) {
		t.Error("{(1,2)} should be a ⪯owa lower bound of the worlds")
	}
	if IsLowerBound(CWA, intersection, worlds) {
		t.Error("{(1,2)} must NOT be a ⪯cwa lower bound — the paper's point")
	}
	if !IsLowerBound(CWA, r, worlds) {
		t.Error("R itself is a ⪯cwa lower bound of its worlds")
	}
	if !IsLowerBound(OWA, r, worlds) {
		t.Error("R is also a ⪯owa lower bound")
	}
	// R is a greater lower bound than the intersection under OWA.
	if !Leq(OWA, intersection, r) {
		t.Error("intersection ⪯owa R should hold")
	}
}

func TestGLBOWAOfValuationImages(t *testing.T) {
	// GLB of all valuation images of R = {(1,⊥)} over a couple of worlds
	// should be hom-equivalent to R itself (certainO[[R]] = R).
	r := db(t, []string{"1", "⊥1"})
	worlds := []*table.Database{
		db(t, []string{"1", "5"}),
		db(t, []string{"1", "6"}),
		db(t, []string{"1", "7"}),
	}
	glb, err := GLBOWA(worlds)
	if err != nil {
		t.Fatal(err)
	}
	if !IsLowerBound(OWA, glb, worlds) {
		t.Fatal("GLB must be a lower bound")
	}
	// r is also a lower bound, and must be ⪯owa the GLB; and vice versa.
	if !Leq(OWA, r, glb) || !Leq(OWA, glb, r) {
		t.Errorf("GLB %v should be hom-equivalent to %v", glb, r)
	}
	if !IsGreatestLowerBound(OWA, glb, worlds, []*table.Database{r, db(t, []string{"1", "5"})}) {
		t.Error("GLB should be greatest among the candidates")
	}
	if IsGreatestLowerBound(OWA, db(t, []string{"9", "9"}), worlds, nil) {
		t.Error("unrelated database is not even a lower bound")
	}
}

func TestGLBOWAConstantAgreement(t *testing.T) {
	// Worlds agreeing on a constant position keep the constant; disagreeing
	// positions become shared nulls that remember the disagreement pattern.
	a := db(t, []string{"1", "2"}, []string{"3", "4"})
	b := db(t, []string{"1", "2"}, []string{"3", "5"})
	glb, err := GLBOWA([]*table.Database{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !glb.Relation("R").Contains(table.MustParseTuple("1", "2")) {
		t.Errorf("GLB should keep the common tuple (1,2): %v", glb)
	}
	if !IsLowerBound(OWA, glb, []*table.Database{a, b}) {
		t.Error("GLB must be a lower bound")
	}
	// The common certain tuple database is a lower bound and must embed in glb.
	common := db(t, []string{"1", "2"})
	if !Leq(OWA, common, glb) {
		t.Error("common part should be below the GLB")
	}
}

func TestGLBOWAEdgeCases(t *testing.T) {
	if _, err := GLBOWA(nil); err == nil {
		t.Error("GLB of empty set should error")
	}
	single := db(t, []string{"1", "2"})
	glb, err := GLBOWA([]*table.Database{single})
	if err != nil || !glb.Equal(single) {
		t.Error("GLB of a singleton is the database itself")
	}
	// Empty relation in one input makes the product relation empty.
	withEmpty := []*table.Database{db(t, []string{"1", "2"}), db(t)}
	glb2, err := GLBOWA(withEmpty)
	if err != nil {
		t.Fatal(err)
	}
	if glb2.TotalTuples() != 0 {
		t.Errorf("GLB with an empty input relation should be empty, got %v", glb2)
	}
	// Shared nulls across positions: same disagreement vector gives the same null.
	a := db(t, []string{"1", "1"})
	b := db(t, []string{"2", "2"})
	glb3, _ := GLBOWA([]*table.Database{a, b})
	ts := glb3.Relation("R").Tuples()
	if len(ts) != 1 || ts[0][0] != ts[0][1] {
		t.Errorf("disagreement vector (1,2) should map to one shared null: %v", ts)
	}
	if !ts[0][0].IsNull() {
		t.Error("disagreeing position should be a null")
	}
}

func TestGLBRelationsAndIntersection(t *testing.T) {
	rels := []*table.Relation{
		rel(t, []string{"1", "2"}, []string{"2", "5"}),
		rel(t, []string{"1", "2"}, []string{"2", "6"}),
	}
	glb, err := GLBRelationsOWA(rels)
	if err != nil {
		t.Fatal(err)
	}
	if !glb.Contains(table.MustParseTuple("1", "2")) {
		t.Errorf("GLB relation should contain (1,2): %v", glb)
	}
	// It should also contain a tuple (2,⊥) for the disagreeing pair — i.e.
	// strictly more information than the intersection.
	hasPartial := false
	for _, tp := range glb.Tuples() {
		if tp[0] == table.MustParseTuple("2")[0] && tp[1].IsNull() {
			hasPartial = true
		}
	}
	if !hasPartial {
		t.Errorf("GLB should remember the partially known tuple (2,⊥): %v", glb)
	}

	inter, err := IntersectionRelations(rels)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Len() != 1 || !inter.Contains(table.MustParseTuple("1", "2")) {
		t.Errorf("intersection = %v", inter)
	}
	if _, err := GLBRelationsOWA(nil); err == nil {
		t.Error("GLB of empty relation set should error")
	}
	if _, err := IntersectionRelations(nil); err == nil {
		t.Error("intersection of empty set should error")
	}
	if _, err := IntersectionRelations([]*table.Relation{rel(t, []string{"1", "2"}), table.NewRelationArity("B", 1)}); err == nil {
		t.Error("intersection with arity mismatch should error")
	}
}

func TestMoreInformativeSort(t *testing.T) {
	least := db(t, []string{"⊥1", "⊥2"})
	mid := db(t, []string{"1", "⊥1"})
	most := db(t, []string{"1", "2"})
	sorted := MoreInformativeSort(OWA, []*table.Database{most, least, mid})
	if !sorted[0].Equal(least) || !sorted[2].Equal(most) {
		t.Errorf("sort order wrong: %v", sorted)
	}
	// Sanity: ordering is consistent with hom package.
	if !hom.Exists(least, mid) || !hom.Exists(mid, most) {
		t.Error("expected homomorphisms missing")
	}
}
