package order

import (
	"sync"

	"incdata/internal/schema"
)

// singletonSchemas caches the per-arity schemas used to wrap answer
// relations into databases; GLB folds build many such wrappers.
var singletonSchemas sync.Map // arity → *schema.Schema

// newSingletonSchema returns the schema used to wrap a single answer
// relation into a database so that the database-level GLB machinery can be
// reused for relations.  Schemas are immutable and cached per arity.
func newSingletonSchema(arity int) (*schema.Schema, error) {
	if s, ok := singletonSchemas.Load(arity); ok {
		return s.(*schema.Schema), nil
	}
	s, err := schema.New(schema.WithArity(answerRelName, arity))
	if err != nil {
		return nil, err
	}
	singletonSchemas.Store(arity, s)
	return s, nil
}
