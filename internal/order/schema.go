package order

import "incdata/internal/schema"

// newSingletonSchema builds the throwaway schema used to wrap a single
// answer relation into a database so that the database-level GLB machinery
// can be reused for relations.
func newSingletonSchema(arity int) (*schema.Schema, error) {
	return schema.New(schema.WithArity(answerRelName, arity))
}
