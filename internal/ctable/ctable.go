// Package ctable implements conditional tables (c-tables) and the
// Imieliński–Lipski algebra on them.  A conditional table is a relation
// whose tuples carry local conditions (Boolean combinations of equalities
// over constants and nulls) plus a global condition; under the closed-world
// semantics it represents the databases
//
//	[[T]]cwa = { { v(t_i) | v(c_i) = true } | v a valuation with v(c) = true }.
//
// C-tables are a strong representation system for full relational algebra
// under CWA (Section 2 of the paper): for every query Q and c-table T there
// is a c-table A with [[A]] = Q([[T]]), and the algebra implemented here
// computes it.
package ctable

import (
	"fmt"
	"sort"
	"strings"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/valuation"
	"incdata/internal/value"
)

// Condition is a Boolean combination of equalities between values
// (constants and nulls).
type Condition interface {
	// Eval evaluates the condition under a valuation of nulls; unbound
	// nulls compare by identity.
	Eval(v valuation.Valuation) bool
	// Nulls adds the nulls mentioned by the condition to the set.
	Nulls(set map[value.Value]bool)
	// String renders the condition.
	String() string
}

// TrueCond is the always-true condition.
type TrueCond struct{}

// Eval implements Condition.
func (TrueCond) Eval(valuation.Valuation) bool { return true }

// Nulls implements Condition.
func (TrueCond) Nulls(map[value.Value]bool) {}

// String implements Condition.
func (TrueCond) String() string { return "true" }

// FalseCond is the always-false condition.
type FalseCond struct{}

// Eval implements Condition.
func (FalseCond) Eval(valuation.Valuation) bool { return false }

// Nulls implements Condition.
func (FalseCond) Nulls(map[value.Value]bool) {}

// String implements Condition.
func (FalseCond) String() string { return "false" }

// EqCond is the condition x = y over constants and nulls.
type EqCond struct {
	Left, Right value.Value
}

// Eq builds an equality condition.
func Eq(l, r value.Value) EqCond { return EqCond{Left: l, Right: r} }

// Eval implements Condition.
func (c EqCond) Eval(v valuation.Valuation) bool {
	return v.ApplyValue(c.Left) == v.ApplyValue(c.Right)
}

// Nulls implements Condition.
func (c EqCond) Nulls(set map[value.Value]bool) {
	if c.Left.IsNull() {
		set[c.Left] = true
	}
	if c.Right.IsNull() {
		set[c.Right] = true
	}
}

// String implements Condition.
func (c EqCond) String() string { return c.Left.String() + "=" + c.Right.String() }

// NotCond is negation.
type NotCond struct{ Body Condition }

// Not negates a condition.
func Not(c Condition) Condition { return NotCond{Body: c} }

// Eval implements Condition.
func (c NotCond) Eval(v valuation.Valuation) bool { return !c.Body.Eval(v) }

// Nulls implements Condition.
func (c NotCond) Nulls(set map[value.Value]bool) { c.Body.Nulls(set) }

// String implements Condition.
func (c NotCond) String() string { return "¬(" + c.Body.String() + ")" }

// AndCond is conjunction.
type AndCond struct{ Conds []Condition }

// And conjoins conditions, flattening trivial cases.
func And(cs ...Condition) Condition {
	var keep []Condition
	for _, c := range cs {
		switch c.(type) {
		case TrueCond:
			continue
		case FalseCond:
			return FalseCond{}
		}
		keep = append(keep, c)
	}
	if len(keep) == 0 {
		return TrueCond{}
	}
	if len(keep) == 1 {
		return keep[0]
	}
	return AndCond{Conds: keep}
}

// Eval implements Condition.
func (c AndCond) Eval(v valuation.Valuation) bool {
	for _, cc := range c.Conds {
		if !cc.Eval(v) {
			return false
		}
	}
	return true
}

// Nulls implements Condition.
func (c AndCond) Nulls(set map[value.Value]bool) {
	for _, cc := range c.Conds {
		cc.Nulls(set)
	}
}

// String implements Condition.
func (c AndCond) String() string { return joinConds(c.Conds, " ∧ ") }

// OrCond is disjunction.
type OrCond struct{ Conds []Condition }

// Or disjoins conditions, flattening trivial cases.
func Or(cs ...Condition) Condition {
	var keep []Condition
	for _, c := range cs {
		switch c.(type) {
		case FalseCond:
			continue
		case TrueCond:
			return TrueCond{}
		}
		keep = append(keep, c)
	}
	if len(keep) == 0 {
		return FalseCond{}
	}
	if len(keep) == 1 {
		return keep[0]
	}
	return OrCond{Conds: keep}
}

// Eval implements Condition.
func (c OrCond) Eval(v valuation.Valuation) bool {
	for _, cc := range c.Conds {
		if cc.Eval(v) {
			return true
		}
	}
	return false
}

// Nulls implements Condition.
func (c OrCond) Nulls(set map[value.Value]bool) {
	for _, cc := range c.Conds {
		cc.Nulls(set)
	}
}

// String implements Condition.
func (c OrCond) String() string { return joinConds(c.Conds, " ∨ ") }

func joinConds(cs []Condition, sep string) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Row is a conditional tuple: the tuple is present in a world exactly when
// its condition holds under the world's valuation.
type Row struct {
	Tuple table.Tuple
	Cond  Condition
}

// CTable is a conditional table: a schema, conditional rows, and a global
// condition restricting the admissible valuations.
type CTable struct {
	Schema schema.Relation
	Rows   []Row
	Global Condition
}

// New creates an empty c-table with an always-true global condition.
func New(rs schema.Relation) *CTable {
	return &CTable{Schema: rs, Global: TrueCond{}}
}

// FromRelation lifts an ordinary naïve table to a c-table (all conditions
// true): naïve tables are the special case of c-tables without conditions.
func FromRelation(r *table.Relation) *CTable {
	ct := New(r.Schema())
	for _, t := range r.Tuples() {
		ct.Rows = append(ct.Rows, Row{Tuple: t, Cond: TrueCond{}})
	}
	return ct
}

// Add appends a conditional row.
func (c *CTable) Add(t table.Tuple, cond Condition) error {
	if len(t) != c.Schema.Arity() {
		return fmt.Errorf("ctable: tuple %v has arity %d, table has arity %d", t, len(t), c.Schema.Arity())
	}
	if cond == nil {
		cond = TrueCond{}
	}
	c.Rows = append(c.Rows, Row{Tuple: t.Clone(), Cond: cond})
	return nil
}

// MustAdd is Add that panics on error.
func (c *CTable) MustAdd(t table.Tuple, cond Condition) {
	if err := c.Add(t, cond); err != nil {
		panic(err)
	}
}

// Nulls returns all nulls mentioned in tuples, row conditions, or the
// global condition.
func (c *CTable) Nulls() map[value.Value]bool {
	out := map[value.Value]bool{}
	for _, r := range c.Rows {
		for _, v := range r.Tuple {
			if v.IsNull() {
				out[v] = true
			}
		}
		r.Cond.Nulls(out)
	}
	if c.Global != nil {
		c.Global.Nulls(out)
	}
	return out
}

// Consts returns all constants mentioned in tuples.
func (c *CTable) Consts() map[value.Value]bool {
	out := map[value.Value]bool{}
	for _, r := range c.Rows {
		for _, v := range r.Tuple {
			if v.IsConst() {
				out[v] = true
			}
		}
	}
	return out
}

// World materialises the relation represented by the c-table under a total
// valuation: rows whose condition holds, with nulls substituted.  The
// second return value is false when the global condition fails (no world).
func (c *CTable) World(v valuation.Valuation) (*table.Relation, bool) {
	if c.Global != nil && !c.Global.Eval(v) {
		return nil, false
	}
	out := table.NewRelation(c.Schema)
	for _, r := range c.Rows {
		if r.Cond.Eval(v) {
			out.MustAdd(v.ApplyTuple(r.Tuple))
		}
	}
	return out, true
}

// Worlds enumerates the distinct relations represented by the c-table when
// nulls range over the given constant domain, calling fn for each; fn
// returns false to stop early.  The return value reports completion.
func (c *CTable) Worlds(dom []value.Value, fn func(*table.Relation) bool) bool {
	nulls := table.SortedValues(c.Nulls())
	seen := map[string]bool{}
	return valuation.Enumerate(nulls, dom, func(v valuation.Valuation) bool {
		w, ok := c.World(v)
		if !ok {
			return true
		}
		key := w.String()
		if seen[key] {
			return true
		}
		seen[key] = true
		return fn(w)
	})
}

// WorldSet collects all distinct worlds over the domain, keyed by their
// canonical string rendering.
func (c *CTable) WorldSet(dom []value.Value) map[string]*table.Relation {
	out := map[string]*table.Relation{}
	c.Worlds(dom, func(r *table.Relation) bool {
		out[r.String()] = r
		return true
	})
	return out
}

// String renders the c-table with its conditions.
func (c *CTable) String() string {
	var b strings.Builder
	b.WriteString(c.Schema.String())
	b.WriteString(" where ")
	if c.Global != nil {
		b.WriteString(c.Global.String())
	} else {
		b.WriteString("true")
	}
	b.WriteString(" {")
	rows := append([]Row(nil), c.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Tuple.Less(rows[j].Tuple) })
	for i, r := range rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.Tuple.String())
		b.WriteString(" if ")
		b.WriteString(r.Cond.String())
	}
	b.WriteString("}")
	return b.String()
}
