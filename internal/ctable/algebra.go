package ctable

import (
	"fmt"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// The Imieliński–Lipski algebra on conditional tables.  Each operator takes
// c-tables and produces a c-table A such that the worlds of A are exactly
// the results of applying the operator to the worlds of the inputs — this
// is what makes c-tables a strong representation system for full relational
// algebra under CWA.
//
// All binary operators require their operands to share the global
// condition semantics; we conjoin the global conditions of the inputs.

// eqTuples builds the condition stating that two tuples of equal arity are
// field-wise equal (used by difference and intersection).
func eqTuples(a, b table.Tuple) Condition {
	conds := make([]Condition, 0, len(a))
	for i := range a {
		if a[i].IsConst() && b[i].IsConst() {
			if a[i] != b[i] {
				return FalseCond{}
			}
			continue
		}
		conds = append(conds, Eq(a[i], b[i]))
	}
	return And(conds...)
}

// Select keeps rows satisfying a symbolic predicate on attributes: the
// predicate becomes part of each row's condition rather than being decided
// now.  pred maps a tuple to the Condition it must satisfy.
func Select(c *CTable, pred func(t table.Tuple) Condition) *CTable {
	out := New(c.Schema.Rename("σ(" + c.Schema.Name + ")"))
	out.Global = c.Global
	for _, r := range c.Rows {
		p := pred(r.Tuple)
		cond := And(r.Cond, p)
		if _, isFalse := cond.(FalseCond); isFalse {
			continue
		}
		out.Rows = append(out.Rows, Row{Tuple: r.Tuple.Clone(), Cond: cond})
	}
	return out
}

// SelectEqAttr builds the predicate "attribute i = attribute j" for Select.
func SelectEqAttr(i, j int) func(table.Tuple) Condition {
	return func(t table.Tuple) Condition { return eqValues(t[i], t[j]) }
}

// SelectEqConst builds the predicate "attribute i = constant" for Select.
func SelectEqConst(i int, c value.Value) func(table.Tuple) Condition {
	return func(t table.Tuple) Condition { return eqValues(t[i], c) }
}

// SelectNeqConst builds the predicate "attribute i ≠ constant" for Select.
func SelectNeqConst(i int, c value.Value) func(table.Tuple) Condition {
	return func(t table.Tuple) Condition { return Not(eqValues(t[i], c)) }
}

// eqValues simplifies an equality between two values into a condition.
func eqValues(a, b value.Value) Condition {
	if a.IsConst() && b.IsConst() {
		if a == b {
			return TrueCond{}
		}
		return FalseCond{}
	}
	if a == b {
		return TrueCond{}
	}
	return Eq(a, b)
}

// Project projects the c-table onto the given positions.
func Project(c *CTable, positions []int, attrs []string) (*CTable, error) {
	if len(positions) == 0 || len(positions) != len(attrs) {
		return nil, fmt.Errorf("ctable: bad projection")
	}
	for _, p := range positions {
		if p < 0 || p >= c.Schema.Arity() {
			return nil, fmt.Errorf("ctable: projection position %d out of range", p)
		}
	}
	out := New(schema.NewRelation("π("+c.Schema.Name+")", attrs...))
	out.Global = c.Global
	for _, r := range c.Rows {
		out.Rows = append(out.Rows, Row{Tuple: r.Tuple.Project(positions...), Cond: r.Cond})
	}
	return out, nil
}

// Product is the cartesian product of two c-tables: tuples are concatenated
// and conditions conjoined.
func Product(a, b *CTable, attrs []string) (*CTable, error) {
	if len(attrs) != a.Schema.Arity()+b.Schema.Arity() {
		return nil, fmt.Errorf("ctable: product needs %d attribute names", a.Schema.Arity()+b.Schema.Arity())
	}
	out := New(schema.NewRelation("("+a.Schema.Name+"×"+b.Schema.Name+")", attrs...))
	out.Global = And(a.Global, b.Global)
	for _, ra := range a.Rows {
		for _, rb := range b.Rows {
			out.Rows = append(out.Rows, Row{
				Tuple: ra.Tuple.Concat(rb.Tuple),
				Cond:  And(ra.Cond, rb.Cond),
			})
		}
	}
	return out, nil
}

// Union is the union of two c-tables of the same arity.
func Union(a, b *CTable) (*CTable, error) {
	if a.Schema.Arity() != b.Schema.Arity() {
		return nil, fmt.Errorf("ctable: union of arities %d and %d", a.Schema.Arity(), b.Schema.Arity())
	}
	out := New(schema.NewRelation("("+a.Schema.Name+"∪"+b.Schema.Name+")", a.Schema.Attrs...))
	out.Global = And(a.Global, b.Global)
	for _, r := range a.Rows {
		out.Rows = append(out.Rows, Row{Tuple: r.Tuple.Clone(), Cond: r.Cond})
	}
	for _, r := range b.Rows {
		out.Rows = append(out.Rows, Row{Tuple: r.Tuple.Clone(), Cond: r.Cond})
	}
	return out, nil
}

// Intersect is the intersection of two c-tables of the same arity: a tuple
// of a survives when some tuple of b is present and equal to it.
func Intersect(a, b *CTable) (*CTable, error) {
	if a.Schema.Arity() != b.Schema.Arity() {
		return nil, fmt.Errorf("ctable: intersection of arities %d and %d", a.Schema.Arity(), b.Schema.Arity())
	}
	out := New(schema.NewRelation("("+a.Schema.Name+"∩"+b.Schema.Name+")", a.Schema.Attrs...))
	out.Global = And(a.Global, b.Global)
	for _, ra := range a.Rows {
		var anyMatch []Condition
		for _, rb := range b.Rows {
			anyMatch = append(anyMatch, And(rb.Cond, eqTuples(ra.Tuple, rb.Tuple)))
		}
		cond := And(ra.Cond, Or(anyMatch...))
		if _, isFalse := cond.(FalseCond); isFalse {
			continue
		}
		out.Rows = append(out.Rows, Row{Tuple: ra.Tuple.Clone(), Cond: cond})
	}
	return out, nil
}

// Diff is the difference a − b: a tuple of a survives when no tuple of b is
// simultaneously present and equal to it.  This is the operator that takes
// c-tables outside the reach of naïve tables and is the classic example of
// why a strong representation system for full RA needs conditions.
func Diff(a, b *CTable) (*CTable, error) {
	if a.Schema.Arity() != b.Schema.Arity() {
		return nil, fmt.Errorf("ctable: difference of arities %d and %d", a.Schema.Arity(), b.Schema.Arity())
	}
	out := New(schema.NewRelation("("+a.Schema.Name+"−"+b.Schema.Name+")", a.Schema.Attrs...))
	out.Global = And(a.Global, b.Global)
	for _, ra := range a.Rows {
		cond := ra.Cond
		for _, rb := range b.Rows {
			clash := And(rb.Cond, eqTuples(ra.Tuple, rb.Tuple))
			cond = And(cond, Not(clash))
		}
		out.Rows = append(out.Rows, Row{Tuple: ra.Tuple.Clone(), Cond: cond})
	}
	return out, nil
}
