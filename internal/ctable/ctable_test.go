package ctable

import (
	"strings"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/valuation"
	"incdata/internal/value"
)

func unary(name string, vals ...string) *table.Relation {
	r := table.NewRelation(schema.NewRelation(name, "A"))
	for _, v := range vals {
		r.MustAdd(table.MustParseTuple(v))
	}
	return r
}

func TestConditionEval(t *testing.T) {
	v := valuation.New()
	v.MustSet(value.Null(1), value.Int(1))

	if !(TrueCond{}).Eval(v) || (FalseCond{}).Eval(v) {
		t.Error("constants wrong")
	}
	if !Eq(value.Null(1), value.Int(1)).Eval(v) {
		t.Error("⊥1=1 under ⊥1↦1 should hold")
	}
	if Eq(value.Null(1), value.Int(2)).Eval(v) {
		t.Error("⊥1=2 under ⊥1↦1 should fail")
	}
	// Unbound nulls compare by identity.
	if !Eq(value.Null(9), value.Null(9)).Eval(v) || Eq(value.Null(9), value.Null(8)).Eval(v) {
		t.Error("identity semantics for unbound nulls wrong")
	}
	if !Not(FalseCond{}).Eval(v) || Not(TrueCond{}).Eval(v) {
		t.Error("negation wrong")
	}
	c := And(Eq(value.Null(1), value.Int(1)), Or(FalseCond{}, TrueCond{}))
	if !c.Eval(v) {
		t.Error("composite condition should hold")
	}
	// And/Or simplification.
	if _, ok := And().(TrueCond); !ok {
		t.Error("empty And should be true")
	}
	if _, ok := Or().(FalseCond); !ok {
		t.Error("empty Or should be false")
	}
	if _, ok := And(TrueCond{}, FalseCond{}).(FalseCond); !ok {
		t.Error("And with false should simplify to false")
	}
	if _, ok := Or(TrueCond{}, FalseCond{}).(TrueCond); !ok {
		t.Error("Or with true should simplify to true")
	}
	if c := And(Eq(value.Null(1), value.Int(1))); c.String() != "⊥1=1" {
		t.Errorf("single-conjunct And should unwrap, got %s", c.String())
	}
	// Nulls collection.
	set := map[value.Value]bool{}
	And(Eq(value.Null(1), value.Int(1)), Not(Or(Eq(value.Null(2), value.Null(3))))).Nulls(set)
	if len(set) != 3 {
		t.Errorf("Nulls = %v", set)
	}
	// Or/And eval over multiple conjuncts, Or eval false case.
	if Or(Eq(value.Null(1), value.Int(5)), Eq(value.Null(1), value.Int(7))).Eval(v) {
		t.Error("neither disjunct holds")
	}
	if And(Eq(value.Null(1), value.Int(1)), Eq(value.Null(1), value.Int(2))).Eval(v) {
		t.Error("conjunction with a false conjunct should fail")
	}
}

func TestConditionStrings(t *testing.T) {
	c := And(Eq(value.Null(1), value.Int(0)), Or(Eq(value.Null(1), value.Int(0)), Eq(value.Null(1), value.Int(1))))
	s := c.String()
	if !strings.Contains(s, "∧") || !strings.Contains(s, "∨") || !strings.Contains(s, "⊥1=0") {
		t.Errorf("condition string = %q", s)
	}
	if (TrueCond{}).String() != "true" || (FalseCond{}).String() != "false" {
		t.Error("constant strings wrong")
	}
	if Not(TrueCond{}).String() != "¬(true)" {
		t.Error("not string wrong")
	}
}

// The paper's disjunction example: a c-table whose worlds are {{0},{1}}.
func TestDisjunctionEncoding(t *testing.T) {
	ct := New(schema.NewRelation("D", "A"))
	n := value.Null(1)
	ct.MustAdd(table.NewTuple(value.Int(1)), Eq(n, value.Int(1)))
	ct.MustAdd(table.NewTuple(value.Int(0)), Eq(n, value.Int(0)))
	ct.Global = Or(Eq(n, value.Int(0)), Eq(n, value.Int(1)))

	dom := []value.Value{value.Int(0), value.Int(1), value.Int(7)}
	worlds := ct.WorldSet(dom)
	if len(worlds) != 2 {
		t.Fatalf("expected 2 worlds, got %d: %v", len(worlds), worlds)
	}
	want0 := unary("D", "0")
	want1 := unary("D", "1")
	found0, found1 := false, false
	for _, w := range worlds {
		if w.Equal(want0) {
			found0 = true
		}
		if w.Equal(want1) {
			found1 = true
		}
	}
	if !found0 || !found1 {
		t.Errorf("worlds = %v", worlds)
	}
	// Valuations violating the global condition are rejected by World.
	v := valuation.New()
	v.MustSet(n, value.Int(7))
	if _, ok := ct.World(v); ok {
		t.Error("global condition should reject ⊥1↦7")
	}
}

func TestCTableBasics(t *testing.T) {
	rel := unary("R", "1", "⊥1")
	ct := FromRelation(rel)
	if len(ct.Rows) != 2 {
		t.Fatalf("FromRelation rows = %d", len(ct.Rows))
	}
	if err := ct.Add(table.MustParseTuple("1", "2"), nil); err == nil {
		t.Error("arity mismatch should fail")
	}
	ct.MustAdd(table.MustParseTuple("3"), nil)
	if len(ct.Rows) != 3 {
		t.Error("MustAdd failed")
	}
	nulls := ct.Nulls()
	if len(nulls) != 1 || !nulls[value.Null(1)] {
		t.Errorf("Nulls = %v", nulls)
	}
	consts := ct.Consts()
	if len(consts) != 2 {
		t.Errorf("Consts = %v", consts)
	}
	s := ct.String()
	if !strings.Contains(s, "if true") || !strings.Contains(s, "where true") {
		t.Errorf("String = %q", s)
	}
	// nil global renders as true and accepts all valuations.
	ct.Global = nil
	if !strings.Contains(ct.String(), "where true") {
		t.Error("nil global should render as true")
	}
	if _, ok := ct.World(valuation.New()); !ok {
		t.Error("nil global should accept valuations")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd should panic on arity mismatch")
		}
	}()
	ct.MustAdd(table.MustParseTuple("1", "2"), nil)
}

// The central example from Section 2: R = {1,2}, S = {⊥}; the c-table for
// R − S must represent exactly Q([[D]]cwa) = {{1,2},{1},{2}}.
func TestDiffStrongRepresentation(t *testing.T) {
	r := FromRelation(unary("R", "1", "2"))
	s := FromRelation(unary("S", "⊥1"))
	diff, err := Diff(r, s)
	if err != nil {
		t.Fatal(err)
	}
	dom := []value.Value{value.Int(1), value.Int(2), value.Int(3)}
	worlds := diff.WorldSet(dom)
	if len(worlds) != 3 {
		t.Fatalf("expected 3 worlds, got %d: %v", len(worlds), worlds)
	}
	expect := []*table.Relation{unary("X", "1", "2"), unary("X", "1"), unary("X", "2")}
	for _, want := range expect {
		found := false
		for _, w := range worlds {
			if w.Equal(want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing world %v", want)
		}
	}

	// Cross-check against direct evaluation world by world: for every
	// valuation of ⊥1 over the domain, v(R) − v(S) must be a world of diff.
	for _, c := range dom {
		v := valuation.New()
		v.MustSet(value.Null(1), c)
		want := table.NewRelation(schema.NewRelation("W", "A"))
		want.MustAdd(table.MustParseTuple("1"))
		want.MustAdd(table.MustParseTuple("2"))
		want.Remove(table.NewTuple(c))
		got, ok := diff.World(v)
		if !ok {
			t.Fatalf("world for %v rejected", v)
		}
		if !got.Equal(want) {
			t.Errorf("world for ⊥1↦%v = %v, want %v", c, got, want)
		}
	}
	if _, err := Diff(r, FromRelation(table.NewRelation(schema.WithArity("T", 2)))); err == nil {
		t.Error("difference with arity mismatch should fail")
	}
}

func TestUnionIntersectProduct(t *testing.T) {
	a := FromRelation(unary("A", "1", "⊥1"))
	b := FromRelation(unary("B", "2", "⊥2"))

	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dom := []value.Value{value.Int(1), value.Int(2)}
	// Union worlds: {v(⊥1), v(⊥2), 1, 2} for all valuations — always {1,2} or {1,2}∪...
	u.Worlds(dom, func(w *table.Relation) bool {
		if !w.Contains(table.MustParseTuple("1")) || !w.Contains(table.MustParseTuple("2")) {
			t.Errorf("union world %v missing base constants", w)
		}
		return true
	})
	if _, err := Union(a, FromRelation(table.NewRelation(schema.WithArity("T", 2)))); err == nil {
		t.Error("union arity mismatch should fail")
	}

	i, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Worlds of a ∩ b: depends on ⊥1,⊥2; e.g. ⊥1↦2,⊥2↦1 gives {1,2}∩{2,1} = {1,2}.
	foundBoth := false
	i.Worlds(dom, func(w *table.Relation) bool {
		if w.Len() == 2 {
			foundBoth = true
		}
		return true
	})
	if !foundBoth {
		t.Error("intersection should have a world of size 2")
	}
	if _, err := Intersect(a, FromRelation(table.NewRelation(schema.WithArity("T", 2)))); err == nil {
		t.Error("intersect arity mismatch should fail")
	}

	p, err := Product(a, b, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 4 || p.Schema.Arity() != 2 {
		t.Errorf("product rows = %d arity = %d", len(p.Rows), p.Schema.Arity())
	}
	if _, err := Product(a, b, []string{"x"}); err == nil {
		t.Error("product with wrong attribute count should fail")
	}
}

func TestSelectAndProject(t *testing.T) {
	rel := table.NewRelation(schema.NewRelation("R", "a", "b"))
	rel.MustAdd(table.MustParseTuple("1", "⊥1"))
	rel.MustAdd(table.MustParseTuple("2", "3"))
	rel.MustAdd(table.MustParseTuple("4", "5"))
	ct := FromRelation(rel)

	// σ[b = 3]: the (2,3) row stays unconditionally, the (1,⊥1) row stays
	// under condition ⊥1=3, the (4,5) row disappears.
	sel := Select(ct, SelectEqConst(1, value.Int(3)))
	if len(sel.Rows) != 2 {
		t.Fatalf("selected rows = %d: %v", len(sel.Rows), sel)
	}
	dom := []value.Value{value.Int(3), value.Int(9)}
	worlds := sel.WorldSet(dom)
	// ⊥1↦3: {(1,3),(2,3)}; ⊥1↦9: {(2,3)}.
	if len(worlds) != 2 {
		t.Fatalf("selection worlds = %d", len(worlds))
	}

	// σ[a = b] on a table with a null: condition ⊥1=1 retained.
	sel2 := Select(ct, SelectEqAttr(0, 1))
	if len(sel2.Rows) != 1 {
		t.Errorf("σ[a=b] rows = %d", len(sel2.Rows))
	}
	// σ[b ≠ 3].
	sel3 := Select(ct, SelectNeqConst(1, value.Int(3)))
	found := false
	sel3.Worlds(dom, func(w *table.Relation) bool {
		if w.Contains(table.MustParseTuple("4", "5")) {
			found = true
		}
		return true
	})
	if !found {
		t.Error("σ[b≠3] should keep (4,5) in all worlds")
	}

	// Projection.
	pr, err := Project(ct, []int{0}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Schema.Arity() != 1 || len(pr.Rows) != 3 {
		t.Errorf("projection wrong: %v", pr)
	}
	if _, err := Project(ct, []int{5}, []string{"x"}); err == nil {
		t.Error("projection out of range should fail")
	}
	if _, err := Project(ct, nil, nil); err == nil {
		t.Error("empty projection should fail")
	}
	if _, err := Project(ct, []int{0}, []string{"a", "b"}); err == nil {
		t.Error("mismatched attrs should fail")
	}
}

func TestEqTuplesShortcut(t *testing.T) {
	// Constant clash yields FalseCond and the row is dropped entirely in Intersect.
	a := FromRelation(unary("A", "1"))
	b := FromRelation(unary("B", "2"))
	i, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(i.Rows) != 0 {
		t.Errorf("intersection of disjoint constants should have no rows, got %v", i.Rows)
	}
	// eqTuples on identical constants is true (no condition).
	c := eqTuples(table.MustParseTuple("1", "⊥1"), table.MustParseTuple("1", "⊥2"))
	if c.String() != "⊥1=⊥2" {
		t.Errorf("eqTuples = %s", c.String())
	}
}

func TestWorldsEarlyStopAndCount(t *testing.T) {
	ct := FromRelation(unary("R", "⊥1", "⊥2"))
	dom := []value.Value{value.Int(1), value.Int(2)}
	count := 0
	completed := ct.Worlds(dom, func(*table.Relation) bool {
		count++
		return false
	})
	if completed || count != 1 {
		t.Errorf("early stop failed: %v %d", completed, count)
	}
}
