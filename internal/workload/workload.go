// Package workload generates the synthetic databases used by the benchmark
// harness and the examples: the orders/payments scenario of the paper's
// introduction at configurable scale and null rate, random naïve databases
// with a controlled number of marked nulls, and enrolment databases for the
// division (RAcwa) experiments.
//
// All generators are deterministic given a seed, so every experiment in
// the "Experiments" section of README.md is reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math/rand"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// OrdersConfig parameterises the orders/payments generator.
type OrdersConfig struct {
	// Orders is the number of orders.
	Orders int
	// PaidFraction is the fraction of orders that have a payment.
	PaidFraction float64
	// NullRate is the probability that a payment's order reference is a
	// (marked) null instead of the order id.
	NullRate float64
	// Seed makes the instance reproducible.
	Seed int64
}

// OrdersSchema returns the schema of the introduction's example:
// Order(o_id, product) and Pay(p_id, order, amount).
func OrdersSchema() *schema.Schema {
	return schema.MustNew(
		schema.NewRelation("Order", "o_id", "product"),
		schema.NewRelation("Pay", "p_id", "order", "amount"),
	)
}

// Orders generates an orders/payments database.  The second return value
// lists the order ids that are truly unpaid (the ground truth an oracle
// with complete information would report); the experiments compare SQL and
// certain-answer evaluation against it.
func Orders(cfg OrdersConfig) (*table.Database, []string) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := table.NewDatabase(OrdersSchema())
	var unpaid []string
	nextNull := uint64(1)
	for i := 0; i < cfg.Orders; i++ {
		oid := fmt.Sprintf("oid%d", i)
		product := fmt.Sprintf("pr%d", rng.Intn(cfg.Orders/2+1))
		d.MustAdd("Order", table.NewTuple(value.String(oid), value.String(product)))
		if rng.Float64() < cfg.PaidFraction {
			pid := fmt.Sprintf("pid%d", i)
			orderRef := value.String(oid)
			if rng.Float64() < cfg.NullRate {
				orderRef = value.Null(nextNull)
				nextNull++
			}
			amount := value.Int(int64(10 + rng.Intn(990)))
			d.MustAdd("Pay", table.NewTuple(value.String(pid), orderRef, amount))
			if orderRef.IsNull() {
				// The payment exists but we no longer know which order it
				// pays for; the order is actually paid in the ground truth.
				continue
			}
		} else {
			unpaid = append(unpaid, oid)
		}
	}
	return d, unpaid
}

// RandomConfig parameterises the random naïve-database generator.
type RandomConfig struct {
	// Relations maps relation names to arities.
	Relations map[string]int
	// TuplesPerRelation is the number of tuples per relation.
	TuplesPerRelation int
	// DomainSize is the number of distinct constants drawn from.
	DomainSize int
	// Nulls is the number of distinct marked nulls; each null is used at
	// least once and may repeat (naïve nulls).
	Nulls int
	// NullRate is the probability that a position holds a null.
	NullRate float64
	// Seed makes the instance reproducible.
	Seed int64
}

// Random generates a random naïve database.
func Random(cfg RandomConfig) *table.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rels []schema.Relation
	names := make([]string, 0, len(cfg.Relations))
	for name := range cfg.Relations {
		names = append(names, name)
	}
	// Deterministic order regardless of map iteration.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		rels = append(rels, schema.WithArity(name, cfg.Relations[name]))
	}
	d := table.NewDatabase(schema.MustNew(rels...))
	pick := func() value.Value {
		if cfg.Nulls > 0 && rng.Float64() < cfg.NullRate {
			return value.Null(uint64(1 + rng.Intn(cfg.Nulls)))
		}
		return value.Int(int64(rng.Intn(cfg.DomainSize) + 1))
	}
	for _, name := range names {
		arity := cfg.Relations[name]
		for i := 0; i < cfg.TuplesPerRelation; i++ {
			t := make(table.Tuple, arity)
			for j := range t {
				t[j] = pick()
			}
			d.MustAdd(name, t)
		}
	}
	return d
}

// CatalogConfig parameterises the string-heavy catalog generator: every
// attribute is a string drawn from a skewed label pool (with occasional
// marked nulls), the workload shape the dictionary-coded execution tier
// targets — the int-dominated Random generator never exercises the
// dictionary, since in-range integers embed directly in the code space.
type CatalogConfig struct {
	// Items is the number of Item tuples; Tagged gets 2×Items tuples.
	Items int
	// Categories is the number of distinct category labels.
	Categories int
	// Tags is the number of distinct tag labels.
	Tags int
	// Nulls is the number of distinct marked nulls; 0 disables nulls.
	Nulls int
	// NullRate is the probability that a category or tag is a null.
	NullRate float64
	// Seed makes the instance reproducible.
	Seed int64
}

// CatalogSchema returns Item(sku, category) and Tagged(sku, tag).
func CatalogSchema() *schema.Schema {
	return schema.MustNew(
		schema.NewRelation("Item", "sku", "category"),
		schema.NewRelation("Tagged", "sku", "tag"),
	)
}

// Catalog generates a string-heavy item/tag database.  SKUs repeat across
// Item and Tagged (join keys), and categories and tags are drawn from
// small label pools, so projected joins deduplicate heavily — the
// set-semantics shape the coded gather path is optimised for.
func Catalog(cfg CatalogConfig) *table.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := table.NewDatabase(CatalogSchema())
	pick := func(kind string, n int) value.Value {
		if cfg.Nulls > 0 && rng.Float64() < cfg.NullRate {
			return value.Null(uint64(1 + rng.Intn(cfg.Nulls)))
		}
		return value.String(fmt.Sprintf("%s-%d", kind, rng.Intn(n)))
	}
	for i := 0; i < cfg.Items; i++ {
		sku := value.String(fmt.Sprintf("sku-%06d", i))
		d.MustAdd("Item", table.NewTuple(sku, pick("cat", cfg.Categories)))
	}
	for i := 0; i < 2*cfg.Items; i++ {
		sku := value.String(fmt.Sprintf("sku-%06d", rng.Intn(cfg.Items)))
		d.MustAdd("Tagged", table.NewTuple(sku, pick("tag", cfg.Tags)))
	}
	return d
}

// EnrollConfig parameterises the enrolment generator used by the division
// experiments (E9).
type EnrollConfig struct {
	Students int
	Courses  int
	// EnrollRate is the probability that a student takes a given course.
	EnrollRate float64
	// NullRate is the probability that an enrolment's course is a null.
	NullRate float64
	Seed     int64
}

// EnrollSchema returns Enroll(student, course) and Course(course).
func EnrollSchema() *schema.Schema {
	return schema.MustNew(
		schema.NewRelation("Enroll", "student", "course"),
		schema.NewRelation("Course", "course"),
	)
}

// Enroll generates an enrolment database together with the list of students
// that take all courses with certainty (null-free enrolments covering every
// course).
func Enroll(cfg EnrollConfig) (*table.Database, []string) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := table.NewDatabase(EnrollSchema())
	for c := 0; c < cfg.Courses; c++ {
		d.MustAdd("Course", table.NewTuple(value.String(fmt.Sprintf("c%d", c))))
	}
	nextNull := uint64(1)
	var certainAll []string
	for s := 0; s < cfg.Students; s++ {
		student := fmt.Sprintf("s%d", s)
		certainCourses := 0
		for c := 0; c < cfg.Courses; c++ {
			if rng.Float64() >= cfg.EnrollRate {
				continue
			}
			course := value.String(fmt.Sprintf("c%d", c))
			if rng.Float64() < cfg.NullRate {
				course = value.Null(nextNull)
				nextNull++
			} else {
				certainCourses++
			}
			d.MustAdd("Enroll", table.NewTuple(value.String(student), course))
		}
		if certainCourses == cfg.Courses {
			certainAll = append(certainAll, student)
		}
	}
	return d, certainAll
}

// PairsConfig parameterises the two-relation generator used by the
// difference-anomaly experiment (E2) and the naïve-evaluation sweeps (E5).
type PairsConfig struct {
	// RSize and SSize are the sizes of the unary relations R and S.
	RSize, SSize int
	// SNulls is the number of S values replaced by distinct nulls.
	SNulls int
	// DomainSize is the constant domain the values are drawn from.
	DomainSize int
	Seed       int64
}

// Pairs generates a database with unary relations R and S.
func Pairs(cfg PairsConfig) *table.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := schema.MustNew(schema.NewRelation("R", "A"), schema.NewRelation("S", "A"))
	d := table.NewDatabase(s)
	for i := 0; i < cfg.RSize; i++ {
		d.MustAdd("R", table.NewTuple(value.Int(int64(rng.Intn(cfg.DomainSize)+1))))
	}
	nulls := 0
	for i := 0; i < cfg.SSize; i++ {
		if nulls < cfg.SNulls {
			d.MustAdd("S", table.NewTuple(value.Null(uint64(nulls+1))))
			nulls++
			continue
		}
		d.MustAdd("S", table.NewTuple(value.Int(int64(rng.Intn(cfg.DomainSize)+1))))
	}
	return d
}
