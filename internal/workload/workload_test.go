package workload

import (
	"testing"

	"incdata/internal/table"
	"incdata/internal/value"
)

func TestOrdersGenerator(t *testing.T) {
	cfg := OrdersConfig{Orders: 200, PaidFraction: 0.7, NullRate: 0.3, Seed: 42}
	d, unpaid := Orders(cfg)
	if d.Relation("Order").Len() != 200 {
		t.Fatalf("orders = %d", d.Relation("Order").Len())
	}
	pays := d.Relation("Pay").Len()
	if pays == 0 || pays >= 200 {
		t.Errorf("payments = %d, expected some but not all", pays)
	}
	if len(unpaid) == 0 || len(unpaid) >= 200 {
		t.Errorf("unpaid = %d", len(unpaid))
	}
	// Some payments should have null order references at 30% null rate.
	if len(d.Nulls()) == 0 {
		t.Error("expected some null order references")
	}
	// Determinism.
	d2, unpaid2 := Orders(cfg)
	if !d.Equal(d2) || len(unpaid) != len(unpaid2) {
		t.Error("generator should be deterministic for a fixed seed")
	}
	// Different seeds give different instances.
	d3, _ := Orders(OrdersConfig{Orders: 200, PaidFraction: 0.7, NullRate: 0.3, Seed: 43})
	if d.Equal(d3) {
		t.Error("different seeds should give different instances")
	}
	// Unpaid orders really have no payment tuple.
	for _, oid := range unpaid {
		found := false
		d.Relation("Pay").Each(func(tp table.Tuple) bool {
			if tp[1] == value.String(oid) {
				found = true
			}
			return true
		})
		if found {
			t.Errorf("order %s is marked unpaid but has a payment", oid)
		}
	}
	// Zero null rate produces a complete database.
	d4, _ := Orders(OrdersConfig{Orders: 50, PaidFraction: 0.5, NullRate: 0, Seed: 1})
	if !d4.IsComplete() {
		t.Error("null rate 0 should give a complete database")
	}
}

func TestRandomGenerator(t *testing.T) {
	cfg := RandomConfig{
		Relations:         map[string]int{"R": 2, "S": 3},
		TuplesPerRelation: 50,
		DomainSize:        10,
		Nulls:             4,
		NullRate:          0.2,
		Seed:              7,
	}
	d := Random(cfg)
	if d.Relation("R").Arity() != 2 || d.Relation("S").Arity() != 3 {
		t.Error("arities wrong")
	}
	if d.Relation("R").Len() == 0 || d.Relation("R").Len() > 50 {
		t.Errorf("R size = %d", d.Relation("R").Len())
	}
	if len(d.Nulls()) == 0 || len(d.Nulls()) > 4 {
		t.Errorf("nulls = %v", d.Nulls())
	}
	if !d.Equal(Random(cfg)) {
		t.Error("Random should be deterministic")
	}
	// No nulls requested -> complete.
	complete := Random(RandomConfig{Relations: map[string]int{"R": 2}, TuplesPerRelation: 10, DomainSize: 5, Seed: 3})
	if !complete.IsComplete() {
		t.Error("random database without nulls should be complete")
	}
}

func TestEnrollGenerator(t *testing.T) {
	cfg := EnrollConfig{Students: 60, Courses: 4, EnrollRate: 0.8, NullRate: 0.2, Seed: 11}
	d, certain := Enroll(cfg)
	if d.Relation("Course").Len() != 4 {
		t.Fatalf("courses = %d", d.Relation("Course").Len())
	}
	if d.Relation("Enroll").Len() == 0 {
		t.Fatal("no enrolments generated")
	}
	if len(d.Nulls()) == 0 {
		t.Error("expected null course references")
	}
	// Students in the certain list really enrol in every course without nulls.
	for _, s := range certain {
		for c := 0; c < cfg.Courses; c++ {
			if !d.Relation("Enroll").Contains(table.MustParseTuple(s, "c"+itoa(c))) {
				t.Errorf("student %s missing certain enrolment in c%d", s, c)
			}
		}
	}
	d2, certain2 := Enroll(cfg)
	if !d.Equal(d2) || len(certain) != len(certain2) {
		t.Error("Enroll should be deterministic")
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestPairsGenerator(t *testing.T) {
	cfg := PairsConfig{RSize: 100, SSize: 20, SNulls: 3, DomainSize: 50, Seed: 5}
	d := Pairs(cfg)
	if d.Relation("R").Len() == 0 || d.Relation("S").Len() == 0 {
		t.Fatal("empty relations")
	}
	if got := len(d.Nulls()); got != 3 {
		t.Errorf("nulls = %d, want 3", got)
	}
	if !d.Equal(Pairs(cfg)) {
		t.Error("Pairs should be deterministic")
	}
	noNulls := Pairs(PairsConfig{RSize: 10, SSize: 5, SNulls: 0, DomainSize: 10, Seed: 2})
	if !noNulls.IsComplete() {
		t.Error("Pairs without nulls should be complete")
	}
}
