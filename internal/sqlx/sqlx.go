// Package sqlx is the "practice" baseline of the paper: a small in-memory
// evaluator for SQL-style SELECT-FROM-WHERE queries that follows the SQL
// standard's treatment of nulls — Codd's three-valued logic, with
// comparisons against NULL evaluating to unknown and WHERE keeping only
// rows whose condition is definitely true.
//
// It exists to reproduce, verbatim, the anomalies of Section 1:
//
//   - the unpaid-orders query (NOT IN against a subquery returning a null)
//     returning the empty answer although an unpaid order provably exists;
//   - R − S written with NOT IN returning ∅ whenever S contains a null;
//   - Grant's example: σ[order = 'oid1' ∨ order ≠ 'oid1'] returning ∅ on a
//     null although every interpretation of the null satisfies it.
//
// The package deliberately implements only the fragment the paper discusses
// (single-table FROM, scalar comparisons, IN/NOT IN and EXISTS/NOT EXISTS
// subqueries); it is a semantics reference, not a SQL engine.
package sqlx

import (
	"fmt"
	"strings"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/tvl"
	"incdata/internal/value"
)

// Query is a SELECT-FROM-WHERE query over a single relation.
type Query struct {
	// Select lists the output attributes (of the FROM relation).
	Select []string
	// From names the relation scanned by the query.
	From string
	// Where is the condition; nil means "WHERE true".
	Where Cond
}

// String renders the query in SQL-ish syntax.
func (q Query) String() string {
	s := "SELECT " + strings.Join(q.Select, ", ") + " FROM " + q.From
	if q.Where != nil {
		s += " WHERE " + q.Where.String()
	}
	return s
}

// Cond is a WHERE condition evaluated in three-valued logic.
type Cond interface {
	// Truth evaluates the condition on a tuple of the outer relation.
	Truth(t table.Tuple, rs schema.Relation, d *table.Database) (tvl.Truth, error)
	// String renders the condition.
	String() string
}

// Term is an attribute reference or a constant inside a condition.
type Term struct {
	Attr   string
	Const  value.Value
	IsAttr bool
}

// Col references an attribute of the FROM relation.
func Col(name string) Term { return Term{Attr: name, IsAttr: true} }

// Val embeds a constant.
func Val(v value.Value) Term { return Term{Const: v} }

// ValString embeds a string constant.
func ValString(s string) Term { return Val(value.String(s)) }

// ValInt embeds an integer constant.
func ValInt(i int64) Term { return Val(value.Int(i)) }

func (t Term) resolve(tp table.Tuple, rs schema.Relation) (value.Value, error) {
	if !t.IsAttr {
		return t.Const, nil
	}
	i := rs.AttrIndex(t.Attr)
	if i < 0 {
		return value.Value{}, fmt.Errorf("sqlx: unknown attribute %q in %s", t.Attr, rs)
	}
	return tp[i], nil
}

// String renders the term.
func (t Term) String() string {
	if t.IsAttr {
		return t.Attr
	}
	if s, ok := t.Const.AsString(); ok {
		return "'" + s + "'"
	}
	return t.Const.String()
}

// CmpKind is a SQL comparison operator.
type CmpKind uint8

// SQL comparison operators.
const (
	OpEq CmpKind = iota
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
)

func (k CmpKind) String() string {
	switch k {
	case OpEq:
		return "="
	case OpNeq:
		return "<>"
	case OpLt:
		return "<"
	case OpLeq:
		return "<="
	case OpGt:
		return ">"
	case OpGeq:
		return ">="
	default:
		return "?"
	}
}

// Compare is a scalar comparison; it is unknown whenever either side is a
// null, per the SQL standard.
type Compare struct {
	Left  Term
	Op    CmpKind
	Right Term
}

// Eq builds left = right.
func Eq(l, r Term) Compare { return Compare{Left: l, Op: OpEq, Right: r} }

// Neq builds left <> right.
func Neq(l, r Term) Compare { return Compare{Left: l, Op: OpNeq, Right: r} }

// Truth implements Cond.
func (c Compare) Truth(tp table.Tuple, rs schema.Relation, _ *table.Database) (tvl.Truth, error) {
	l, err := c.Left.resolve(tp, rs)
	if err != nil {
		return tvl.Unknown, err
	}
	r, err := c.Right.resolve(tp, rs)
	if err != nil {
		return tvl.Unknown, err
	}
	switch c.Op {
	case OpEq:
		return tvl.Equals(l, r), nil
	case OpNeq:
		return tvl.NotEquals(l, r), nil
	case OpLt:
		return tvl.Less(l, r), nil
	case OpLeq:
		return tvl.LessEq(l, r), nil
	case OpGt:
		return tvl.Greater(l, r), nil
	case OpGeq:
		return tvl.GreaterEq(l, r), nil
	default:
		return tvl.Unknown, fmt.Errorf("sqlx: unknown comparison operator %d", c.Op)
	}
}

// String implements Cond.
func (c Compare) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// IsNull is the SQL "attr IS [NOT] NULL" predicate, the only null-aware
// predicate SQL offers (it is two-valued).
type IsNull struct {
	Term   Term
	Negate bool
}

// Truth implements Cond.
func (c IsNull) Truth(tp table.Tuple, rs schema.Relation, _ *table.Database) (tvl.Truth, error) {
	v, err := c.Term.resolve(tp, rs)
	if err != nil {
		return tvl.Unknown, err
	}
	isNull := v.IsNull()
	if c.Negate {
		isNull = !isNull
	}
	return tvl.FromBool(isNull), nil
}

// String implements Cond.
func (c IsNull) String() string {
	if c.Negate {
		return c.Term.String() + " IS NOT NULL"
	}
	return c.Term.String() + " IS NULL"
}

// And is conjunction in Kleene logic.
type And struct{ Conds []Cond }

// AllOf builds a conjunction.
func AllOf(cs ...Cond) And { return And{Conds: cs} }

// Truth implements Cond.
func (a And) Truth(tp table.Tuple, rs schema.Relation, d *table.Database) (tvl.Truth, error) {
	out := tvl.True
	for _, c := range a.Conds {
		t, err := c.Truth(tp, rs, d)
		if err != nil {
			return tvl.Unknown, err
		}
		out = tvl.And(out, t)
	}
	return out, nil
}

// String implements Cond.
func (a And) String() string { return joinConds(a.Conds, " AND ") }

// Or is disjunction in Kleene logic.
type Or struct{ Conds []Cond }

// AnyOf builds a disjunction.
func AnyOf(cs ...Cond) Or { return Or{Conds: cs} }

// Truth implements Cond.
func (o Or) Truth(tp table.Tuple, rs schema.Relation, d *table.Database) (tvl.Truth, error) {
	out := tvl.False
	for _, c := range o.Conds {
		t, err := c.Truth(tp, rs, d)
		if err != nil {
			return tvl.Unknown, err
		}
		out = tvl.Or(out, t)
	}
	return out, nil
}

// String implements Cond.
func (o Or) String() string { return joinConds(o.Conds, " OR ") }

// Not is Kleene negation.
type Not struct{ Cond Cond }

// Truth implements Cond.
func (n Not) Truth(tp table.Tuple, rs schema.Relation, d *table.Database) (tvl.Truth, error) {
	t, err := n.Cond.Truth(tp, rs, d)
	if err != nil {
		return tvl.Unknown, err
	}
	return tvl.Not(t), nil
}

// String implements Cond.
func (n Not) String() string { return "NOT (" + n.Cond.String() + ")" }

func joinConds(cs []Cond, sep string) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Subquery is a single-column subquery used by IN and EXISTS conditions.
// Correlations equate an attribute of the inner relation with an attribute
// of the outer tuple.
type Subquery struct {
	// Select is the single output attribute (needed for IN; optional for
	// EXISTS).
	Select string
	// From names the inner relation.
	From string
	// Where is the inner condition evaluated on inner tuples; nil means true.
	Where Cond
	// Correlate equates inner attributes with outer attributes (inner = outer).
	Correlate []Correlation
}

// Correlation equates an attribute of the subquery's relation with an
// attribute of the outer query's relation, with SQL's 3VL equality.
type Correlation struct {
	Inner string
	Outer string
}

// values evaluates the subquery for a given outer tuple and returns the
// column of selected values (for IN) or just whether a row matched (for
// EXISTS, via the second return).
func (s Subquery) values(outer table.Tuple, outerRS schema.Relation, d *table.Database) ([]value.Value, bool, error) {
	rel := d.Relation(s.From)
	if rel == nil {
		return nil, false, fmt.Errorf("sqlx: unknown relation %q", s.From)
	}
	innerRS := rel.Schema()
	selIdx := -1
	if s.Select != "" {
		selIdx = innerRS.AttrIndex(s.Select)
		if selIdx < 0 {
			return nil, false, fmt.Errorf("sqlx: unknown attribute %q in %s", s.Select, innerRS)
		}
	}
	var out []value.Value
	exists := false
	var evalErr error
	rel.Each(func(it table.Tuple) bool {
		keep := tvl.True
		for _, corr := range s.Correlate {
			ii := innerRS.AttrIndex(corr.Inner)
			oi := outerRS.AttrIndex(corr.Outer)
			if ii < 0 || oi < 0 {
				evalErr = fmt.Errorf("sqlx: bad correlation %s = %s", corr.Inner, corr.Outer)
				return false
			}
			keep = tvl.And(keep, tvl.Equals(it[ii], outer[oi]))
		}
		if s.Where != nil {
			t, err := s.Where.Truth(it, innerRS, d)
			if err != nil {
				evalErr = err
				return false
			}
			keep = tvl.And(keep, t)
		}
		if keep.IsTrue() {
			exists = true
			if selIdx >= 0 {
				out = append(out, it[selIdx])
			}
		}
		return true
	})
	return out, exists, evalErr
}

// In is "term IN (subquery)"; NOT IN when Negate is set.  Its three-valued
// semantics is exactly SQL's and is the source of the anomalies in the
// paper's introduction.
type In struct {
	Term   Term
	Sub    Subquery
	Negate bool
}

// Truth implements Cond.
func (c In) Truth(tp table.Tuple, rs schema.Relation, d *table.Database) (tvl.Truth, error) {
	v, err := c.Term.resolve(tp, rs)
	if err != nil {
		return tvl.Unknown, err
	}
	col, _, err := c.Sub.values(tp, rs, d)
	if err != nil {
		return tvl.Unknown, err
	}
	t := tvl.In(v, col)
	if c.Negate {
		t = tvl.Not(t)
	}
	return t, nil
}

// String implements Cond.
func (c In) String() string {
	op := "IN"
	if c.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (SELECT %s FROM %s%s)", c.Term.String(), op, c.Sub.Select, c.Sub.From, subWhere(c.Sub))
}

// Exists is "[NOT] EXISTS (subquery)".  EXISTS is two-valued in SQL: a row
// either matches or it does not, so NOT EXISTS rewrites do not suffer from
// the NOT IN anomaly — package certain uses this contrast in experiment E1.
type Exists struct {
	Sub    Subquery
	Negate bool
}

// Truth implements Cond.
func (c Exists) Truth(tp table.Tuple, rs schema.Relation, d *table.Database) (tvl.Truth, error) {
	_, exists, err := c.Sub.values(tp, rs, d)
	if err != nil {
		return tvl.Unknown, err
	}
	if c.Negate {
		exists = !exists
	}
	return tvl.FromBool(exists), nil
}

// String implements Cond.
func (c Exists) String() string {
	op := "EXISTS"
	if c.Negate {
		op = "NOT EXISTS"
	}
	return fmt.Sprintf("%s (SELECT * FROM %s%s)", op, c.Sub.From, subWhere(c.Sub))
}

func subWhere(s Subquery) string {
	var parts []string
	for _, c := range s.Correlate {
		parts = append(parts, s.From+"."+c.Inner+" = outer."+c.Outer)
	}
	if s.Where != nil {
		parts = append(parts, s.Where.String())
	}
	if len(parts) == 0 {
		return ""
	}
	return " WHERE " + strings.Join(parts, " AND ")
}

// Eval evaluates the query under SQL semantics and returns the resulting
// relation.  Only rows whose WHERE condition is definitely true are kept —
// rows evaluating to unknown are silently dropped, which is precisely the
// behaviour the paper critiques.
func Eval(q Query, d *table.Database) (*table.Relation, error) {
	rel := d.Relation(q.From)
	if rel == nil {
		return nil, fmt.Errorf("sqlx: unknown relation %q", q.From)
	}
	rs := rel.Schema()
	if len(q.Select) == 0 {
		return nil, fmt.Errorf("sqlx: empty SELECT list")
	}
	idx := make([]int, len(q.Select))
	for i, a := range q.Select {
		j := rs.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("sqlx: unknown attribute %q in %s", a, rs)
		}
		idx[i] = j
	}
	out := table.NewRelation(schema.NewRelation("sql("+q.From+")", q.Select...))
	var evalErr error
	rel.Each(func(t table.Tuple) bool {
		keep := tvl.True
		if q.Where != nil {
			tr, err := q.Where.Truth(t, rs, d)
			if err != nil {
				evalErr = err
				return false
			}
			keep = tr
		}
		if keep.IsTrue() {
			out.MustAdd(t.Project(idx...))
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// MustEval is Eval that panics on error.
func MustEval(q Query, d *table.Database) *table.Relation {
	r, err := Eval(q, d)
	if err != nil {
		panic(err)
	}
	return r
}
