package sqlx

import (
	"strings"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// ordersDB is the introduction's instance: Order = {(oid1,pr1),(oid2,pr2)},
// Pay = {(pid1, ⊥, 100)}.
func ordersDB() *table.Database {
	s := schema.MustNew(
		schema.NewRelation("Order", "o_id", "product"),
		schema.NewRelation("Pay", "p_id", "order", "amount"),
	)
	d := table.NewDatabase(s)
	d.MustAddRow("Order", "oid1", "pr1")
	d.MustAddRow("Order", "oid2", "pr2")
	d.MustAddRow("Pay", "pid1", "⊥1", "100")
	return d
}

// The flagship anomaly: the unpaid-orders query returns the empty set even
// though at least one order is certainly unpaid.
func TestUnpaidOrdersAnomaly(t *testing.T) {
	d := ordersDB()
	q := Query{
		Select: []string{"o_id"},
		From:   "Order",
		Where: In{
			Term:   Col("o_id"),
			Sub:    Subquery{Select: "order", From: "Pay"},
			Negate: true,
		},
	}
	res := MustEval(q, d)
	if res.Len() != 0 {
		t.Fatalf("SQL NOT IN with a null should return the empty answer, got %v", res)
	}

	// Sanity check: without the null the query behaves as expected.
	d2 := ordersDB()
	d2.MustRelation("Pay").Remove(table.MustParseTuple("pid1", "⊥1", "100"))
	d2.MustAddRow("Pay", "pid1", "oid1", "100")
	res2 := MustEval(q, d2)
	if res2.Len() != 1 || !res2.Contains(table.MustParseTuple("oid2")) {
		t.Fatalf("without nulls, oid2 should be reported unpaid, got %v", res2)
	}
}

// The NOT EXISTS rewrite does not suffer from the anomaly in the same way:
// it still misses oid1/oid2 only if the null "could" pay for them, i.e. it
// is sound but incomplete, never returning a false positive here.
func TestNotExistsRewrite(t *testing.T) {
	d := ordersDB()
	q := Query{
		Select: []string{"o_id"},
		From:   "Order",
		Where: Exists{
			Sub:    Subquery{From: "Pay", Correlate: []Correlation{{Inner: "order", Outer: "o_id"}}},
			Negate: true,
		},
	}
	res := MustEval(q, d)
	// Under SQL semantics the correlated equality with ⊥ is unknown, so no
	// Pay row matches and NOT EXISTS is true for both orders.
	if res.Len() != 2 {
		t.Fatalf("NOT EXISTS rewrite should return both orders here, got %v", res)
	}
}

// R − S via NOT IN: returns ∅ whenever S contains a null, regardless of R.
func TestDifferenceViaNotInAnomaly(t *testing.T) {
	s := schema.MustNew(schema.NewRelation("R", "A"), schema.NewRelation("S", "A"))
	d := table.NewDatabase(s)
	for i := 0; i < 5; i++ {
		d.MustAddRow("R", value.Int(int64(i)).String())
	}
	d.MustAddRow("S", "⊥1")
	q := Query{
		Select: []string{"A"},
		From:   "R",
		Where:  In{Term: Col("A"), Sub: Subquery{Select: "A", From: "S"}, Negate: true},
	}
	if got := MustEval(q, d); got.Len() != 0 {
		t.Fatalf("R NOT IN S with null S should be empty, got %v", got)
	}
	// |R| > |S| guarantees R−S is nonempty in every world — SQL still says ∅.
}

// Grant's example: WHERE order = 'oid1' OR order <> 'oid1' on a null row.
func TestTautologyAnomaly(t *testing.T) {
	d := ordersDB()
	q := Query{
		Select: []string{"p_id"},
		From:   "Pay",
		Where: AnyOf(
			Eq(Col("order"), ValString("oid1")),
			Neq(Col("order"), ValString("oid1")),
		),
	}
	res := MustEval(q, d)
	if res.Len() != 0 {
		t.Fatalf("tautological WHERE over a null should drop the row under 3VL, got %v", res)
	}
	// The certain answer is {pid1}: every interpretation of ⊥ satisfies the
	// disjunction.  package certain demonstrates the fix; here we only pin
	// down the SQL behaviour.
}

func TestIsNullPredicate(t *testing.T) {
	d := ordersDB()
	q := Query{Select: []string{"p_id"}, From: "Pay", Where: IsNull{Term: Col("order")}}
	if got := MustEval(q, d); got.Len() != 1 {
		t.Fatalf("IS NULL should find the null row, got %v", got)
	}
	q2 := Query{Select: []string{"p_id"}, From: "Pay", Where: IsNull{Term: Col("order"), Negate: true}}
	if got := MustEval(q2, d); got.Len() != 0 {
		t.Fatalf("IS NOT NULL should drop the null row, got %v", got)
	}
}

func TestConnectivesAndComparisons(t *testing.T) {
	s := schema.MustNew(schema.NewRelation("T", "a", "b"))
	d := table.NewDatabase(s)
	d.MustAddRow("T", "1", "2")
	d.MustAddRow("T", "3", "⊥1")
	d.MustAddRow("T", "5", "6")

	// a < 4 AND NOT (b = 2): keeps nothing with nulls involved except...
	q := Query{
		Select: []string{"a"},
		From:   "T",
		Where: AllOf(
			Compare{Left: Col("a"), Op: OpLt, Right: ValInt(4)},
			Not{Cond: Eq(Col("b"), ValInt(2))},
		),
	}
	res := MustEval(q, d)
	// (1,2): 1<4 true, NOT(2=2)=false -> drop. (3,⊥): 3<4 true, NOT(unknown)=unknown -> drop.
	if res.Len() != 0 {
		t.Fatalf("expected empty, got %v", res)
	}
	// a >= 3 OR b <= 2
	q2 := Query{
		Select: []string{"a"},
		From:   "T",
		Where: AnyOf(
			Compare{Left: Col("a"), Op: OpGeq, Right: ValInt(3)},
			Compare{Left: Col("b"), Op: OpLeq, Right: ValInt(2)},
		),
	}
	res2 := MustEval(q2, d)
	if res2.Len() != 3 {
		t.Fatalf("expected 3 rows, got %v", res2)
	}
	// a > 4, a <= 1
	q3 := Query{Select: []string{"a"}, From: "T", Where: Compare{Left: Col("a"), Op: OpGt, Right: ValInt(4)}}
	if MustEval(q3, d).Len() != 1 {
		t.Error("a > 4 should keep one row")
	}
	q4 := Query{Select: []string{"a"}, From: "T", Where: Compare{Left: Col("a"), Op: OpLeq, Right: ValInt(1)}}
	if MustEval(q4, d).Len() != 1 {
		t.Error("a <= 1 should keep one row")
	}
}

func TestEvalNoWhereAndProjection(t *testing.T) {
	d := ordersDB()
	q := Query{Select: []string{"product", "o_id"}, From: "Order"}
	res := MustEval(q, d)
	if res.Len() != 2 || !res.Contains(table.MustParseTuple("pr1", "oid1")) {
		t.Fatalf("projection without WHERE wrong: %v", res)
	}
	// Output keeps nulls (SQL does not hide them).
	q2 := Query{Select: []string{"order"}, From: "Pay"}
	res2 := MustEval(q2, d)
	if res2.Len() != 1 || !res2.Contains(table.MustParseTuple("⊥1")) {
		t.Fatalf("null should appear in output: %v", res2)
	}
}

func TestEvalErrors(t *testing.T) {
	d := ordersDB()
	if _, err := Eval(Query{Select: []string{"x"}, From: "Nope"}, d); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := Eval(Query{Select: []string{"nope"}, From: "Order"}, d); err == nil {
		t.Error("unknown select attribute should error")
	}
	if _, err := Eval(Query{Select: nil, From: "Order"}, d); err == nil {
		t.Error("empty select should error")
	}
	if _, err := Eval(Query{Select: []string{"o_id"}, From: "Order", Where: Eq(Col("zz"), ValInt(1))}, d); err == nil {
		t.Error("unknown attribute in WHERE should error")
	}
	if _, err := Eval(Query{Select: []string{"o_id"}, From: "Order", Where: Eq(ValInt(1), Col("zz"))}, d); err == nil {
		t.Error("unknown attribute on right of comparison should error")
	}
	if _, err := Eval(Query{Select: []string{"o_id"}, From: "Order",
		Where: In{Term: Col("o_id"), Sub: Subquery{Select: "x", From: "Nope"}}}, d); err == nil {
		t.Error("unknown subquery relation should error")
	}
	if _, err := Eval(Query{Select: []string{"o_id"}, From: "Order",
		Where: In{Term: Col("o_id"), Sub: Subquery{Select: "nope", From: "Pay"}}}, d); err == nil {
		t.Error("unknown subquery attribute should error")
	}
	if _, err := Eval(Query{Select: []string{"o_id"}, From: "Order",
		Where: Exists{Sub: Subquery{From: "Pay", Correlate: []Correlation{{Inner: "zz", Outer: "o_id"}}}}}, d); err == nil {
		t.Error("bad correlation should error")
	}
	if _, err := Eval(Query{Select: []string{"o_id"}, From: "Order",
		Where: AllOf(Eq(Col("zz"), ValInt(1)))}, d); err == nil {
		t.Error("error should propagate through AND")
	}
	if _, err := Eval(Query{Select: []string{"o_id"}, From: "Order",
		Where: AnyOf(Eq(Col("zz"), ValInt(1)))}, d); err == nil {
		t.Error("error should propagate through OR")
	}
	if _, err := Eval(Query{Select: []string{"o_id"}, From: "Order",
		Where: Not{Cond: Eq(Col("zz"), ValInt(1))}}, d); err == nil {
		t.Error("error should propagate through NOT")
	}
	if _, err := Eval(Query{Select: []string{"o_id"}, From: "Order",
		Where: IsNull{Term: Col("zz")}}, d); err == nil {
		t.Error("error should propagate through IS NULL")
	}
	if _, err := Eval(Query{Select: []string{"o_id"}, From: "Order",
		Where: Compare{Left: Col("o_id"), Op: CmpKind(99), Right: ValInt(1)}}, d); err == nil {
		t.Error("unknown operator should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEval should panic on error")
		}
	}()
	MustEval(Query{Select: []string{"x"}, From: "Nope"}, d)
}

func TestCorrelatedSubqueryWhere(t *testing.T) {
	d := ordersDB()
	// EXISTS (SELECT * FROM Pay WHERE Pay.order = Order.o_id AND amount >= 50)
	q := Query{
		Select: []string{"o_id"},
		From:   "Order",
		Where: Exists{
			Sub: Subquery{
				From:      "Pay",
				Correlate: []Correlation{{Inner: "order", Outer: "o_id"}},
				Where:     Compare{Left: Col("amount"), Op: OpGeq, Right: ValInt(50)},
			},
		},
	}
	if got := MustEval(q, d); got.Len() != 0 {
		t.Fatalf("no order is definitely paid, got %v", got)
	}
	// Subquery Where errors propagate.
	qBad := q
	qBad.Where = Exists{Sub: Subquery{From: "Pay", Where: Eq(Col("zz"), ValInt(1))}}
	if _, err := Eval(qBad, d); err == nil {
		t.Error("subquery WHERE error should propagate")
	}
}

func TestStrings(t *testing.T) {
	q := Query{
		Select: []string{"o_id"},
		From:   "Order",
		Where: AllOf(
			In{Term: Col("o_id"), Sub: Subquery{Select: "order", From: "Pay"}, Negate: true},
			AnyOf(Eq(Col("product"), ValString("pr1")), Not{Cond: IsNull{Term: Col("product")}}),
			Exists{Sub: Subquery{From: "Pay", Correlate: []Correlation{{Inner: "order", Outer: "o_id"}}}, Negate: true},
		),
	}
	s := q.String()
	for _, frag := range []string{"SELECT o_id FROM Order WHERE", "NOT IN (SELECT order FROM Pay)",
		"product = 'pr1'", "NOT (product IS NULL)", "NOT EXISTS (SELECT * FROM Pay WHERE Pay.order = outer.o_id)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
	if Eq(Col("a"), ValInt(3)).String() != "a = 3" {
		t.Error("Compare string wrong")
	}
	if (IsNull{Term: Col("a"), Negate: true}).String() != "a IS NOT NULL" {
		t.Error("IS NOT NULL string wrong")
	}
	if (In{Term: Col("a"), Sub: Subquery{Select: "b", From: "S", Where: Eq(Col("b"), ValInt(1))}}).String() !=
		"a IN (SELECT b FROM S WHERE b = 1)" {
		t.Error("IN string wrong")
	}
	ops := []CmpKind{OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq, CmpKind(9)}
	names := []string{"=", "<>", "<", "<=", ">", ">=", "?"}
	for i := range ops {
		if ops[i].String() != names[i] {
			t.Errorf("op string %d wrong", i)
		}
	}
}
