// Package certain computes certain answers to relational-algebra queries
// over incomplete databases, in the three ways the paper discusses:
//
//  1. Intersection-based certain answers (equation (1)): ⋂ { Q(D') | D' ∈
//     [[D]] }, computed here as ground truth by enumerating worlds over a
//     finite constant domain (adom plus fresh constants), which is exact for
//     generic queries.
//  2. Naïve evaluation followed by null stripping (equation (4)): the cheap
//     route that the results of Section 6 prove correct for positive queries
//     under OWA/CWA and for RAcwa queries under CWA.
//  3. Ordering-based certainty (Section 5.3): certainO as the greatest lower
//     bound of the answer set in the information ordering, computed through
//     the direct-product construction of package order.
//
// Cross-checking these three against each other — where they must agree and
// where they provably differ — is the substance of experiments E1–E9.
package certain

import (
	"fmt"
	"sync/atomic"

	"incdata/internal/ra"
	"incdata/internal/semantics"
	"incdata/internal/table"
	"incdata/internal/value"
)

// plannerEnabled gates the query-planner fast paths (planned one-shot
// evaluation and world-invariant subplan hoisting) of the package-level
// entry points.  It is on by default; the differential tests flip it to
// compare the planner against the naïve-evaluation oracle, which remains
// the reference implementation for every path.  Production callers go
// through internal/engine, whose per-engine Evaluators carry their own
// planner setting and plan caches — this switch only selects between the
// two shared default evaluators below.
var plannerEnabled atomic.Bool

func init() { plannerEnabled.Store(true) }

// EnablePlanner switches the planner fast paths on or off and returns the
// previous setting.  The oracle paths compute identical results, only
// slower; this exists for benchmarking and differential testing.
func EnablePlanner(on bool) (previous bool) {
	return plannerEnabled.Swap(on)
}

// The default evaluators behind the package-level entry points: one with
// the planner, one oracle.  Their caches are shared process-wide, exactly
// like the package-level plan caches they replace.
var (
	defaultPlanned = NewEvaluator(true)
	defaultOracle  = NewEvaluator(false)
)

// defaultEvaluator picks the default instance for the current
// EnablePlanner setting.
func defaultEvaluator() *Evaluator {
	if plannerEnabled.Load() {
		return defaultPlanned
	}
	return defaultOracle
}

// Options controls world enumeration.
type Options struct {
	// ExtraFresh is the number of fresh constants (outside adom and the
	// query constants) added to the enumeration domain.  Genericity of RA
	// queries makes #nulls fresh constants sufficient; 1 is enough for
	// tuple-level certainty of most queries and is the default when the
	// value is 0 and the database has nulls.
	ExtraFresh int
	// MaxExtraTuples bounds the additional tuples considered in OWA world
	// enumeration (0 enumerates only minimal worlds, which is exact for
	// monotone queries).
	MaxExtraTuples int
	// ExtraConstants are added to the enumeration domain (e.g. constants
	// mentioned by the query).
	ExtraConstants []value.Value
	// Workers enables parallel evaluation of worlds when > 1.
	Workers int
	// MaxWorlds aborts enumeration when the number of valuations would
	// exceed the bound (0 means no bound); this keeps experiment sweeps from
	// running forever on instances with many nulls.
	MaxWorlds int
}

func (o Options) withDefaults(d *table.Database) Options {
	if o.ExtraFresh == 0 && len(d.Nulls()) > 0 {
		o.ExtraFresh = 1
	}
	return o
}

// domain builds the enumeration domain for a database under the options.
func (o Options) domain(d *table.Database) semantics.Domain {
	return semantics.DomainOf(d, o.ExtraFresh, o.ExtraConstants...)
}

// queryConstants collects the constants mentioned by a query's selection
// predicates so they can be added to the enumeration domain.  It walks the
// expression structurally.
func queryConstants(e ra.Expr) []value.Value {
	var out []value.Value
	var walkPred func(p ra.Predicate)
	walkPred = func(p ra.Predicate) {
		switch pp := p.(type) {
		case ra.Cmp:
			if !pp.Left.IsAttr {
				out = append(out, pp.Left.Const)
			}
			if !pp.Right.IsAttr {
				out = append(out, pp.Right.Const)
			}
		case ra.And:
			for _, q := range pp.Preds {
				walkPred(q)
			}
		case ra.Or:
			for _, q := range pp.Preds {
				walkPred(q)
			}
		case ra.Not:
			walkPred(pp.Pred)
		}
	}
	var walk func(e ra.Expr)
	walk = func(e ra.Expr) {
		switch ex := e.(type) {
		case ra.Select:
			walkPred(ex.Pred)
			walk(ex.Input)
		case ra.Project:
			walk(ex.Input)
		case ra.Rename:
			walk(ex.Input)
		case ra.Product:
			walk(ex.Left)
			walk(ex.Right)
		case ra.Join:
			walk(ex.Left)
			walk(ex.Right)
		case ra.Union:
			walk(ex.Left)
			walk(ex.Right)
		case ra.Diff:
			walk(ex.Left)
			walk(ex.Right)
		case ra.Intersect:
			walk(ex.Left)
			walk(ex.Right)
		case ra.Division:
			walk(ex.Left)
			walk(ex.Right)
		}
	}
	walk(e)
	return out
}

// withQueryConstants returns a copy of the options whose ExtraConstants
// additionally contain the constants mentioned by the query.  The original
// slice is never appended to in place: appending could write into the
// caller's backing array and corrupt an Options value reused across calls.
func (o Options) withQueryConstants(q ra.Expr) Options {
	qc := queryConstants(q)
	if len(qc) == 0 {
		return o
	}
	merged := make([]value.Value, 0, len(o.ExtraConstants)+len(qc))
	merged = append(merged, o.ExtraConstants...)
	merged = append(merged, qc...)
	o.ExtraConstants = merged
	return o
}

// NaiveRaw evaluates the query naïvely (nulls as values) without stripping
// nulls from the answer.  It is the certainO representation of the answer
// for monotone generic queries (equation (9)), and the input to the
// null-stripping step.  With the planner enabled the expression is
// compiled to a physical plan (pushdown, indexed joins); results are
// bit-identical to ra.Eval.
func NaiveRaw(q ra.Expr, d *table.Database) (*table.Relation, error) {
	return defaultEvaluator().NaiveRaw(q, d)
}

// Naive computes certain answers by naïve evaluation followed by dropping
// tuples with nulls (equation (4)): Q(D)_cmpl.  The paper's Section 6
// results guarantee this equals the intersection-based certain answers for
// positive queries (under OWA and CWA) and for RAcwa queries (under CWA).
func Naive(q ra.Expr, d *table.Database) (*table.Relation, error) {
	return defaultEvaluator().Naive(q, d)
}

// ErrTooManyWorlds is returned when world enumeration would exceed
// Options.MaxWorlds.
var ErrTooManyWorlds = fmt.Errorf("certain: world enumeration exceeds the configured bound")

// errNoWorlds is returned when the enumeration domain admits no valuation
// at all (mirrors the "intersection of an empty set" error of package
// order).
var errNoWorlds = fmt.Errorf("certain: no worlds to intersect (empty enumeration domain)")

// checkWorldBound enforces Options.MaxWorlds before enumeration starts.
func (o Options) checkWorldBound(d *table.Database, dom semantics.Domain) error {
	if o.MaxWorlds > 0 && semantics.WorldCount(d, dom) > o.MaxWorlds {
		return ErrTooManyWorlds
	}
	return nil
}

// collectWorldsOWA enumerates OWA worlds (valuation images plus up to
// MaxExtraTuples additional tuples over the domain).
func collectWorldsOWA(d *table.Database, opts Options) ([]*table.Database, error) {
	dom := opts.domain(d)
	if err := opts.checkWorldBound(d, dom); err != nil {
		return nil, err
	}
	var worlds []*table.Database
	semantics.EnumerateOWA(d, dom, opts.MaxExtraTuples, func(w *table.Database) bool {
		worlds = append(worlds, w)
		return true
	})
	return worlds, nil
}

// ByWorldsCWA computes the intersection-based certain answers under CWA by
// explicit world enumeration:  ⋂ { Q(v(D)) | v valuation into the finite
// domain }.  For generic queries with enough fresh constants in the domain
// this equals certain(Q,D) under [[·]]cwa.
//
// Worlds are never materialized: the query is evaluated under a valuation
// view of the base database, a running intersection is maintained, and the
// enumeration aborts as soon as the intersection is empty.
func ByWorldsCWA(q ra.Expr, d *table.Database, opts Options) (*table.Relation, error) {
	return defaultEvaluator().ByWorldsCWA(q, d, opts)
}

// ByWorldsOWA computes intersection-based certain answers under OWA over
// the enumerated (bounded) world set.  With MaxExtraTuples = 0 the minimal
// worlds are used, which gives the exact certain answers for monotone
// queries; for non-monotone queries the result is an over-approximation of
// the true OWA certain answers (which are undecidable in general), and
// increasing MaxExtraTuples tightens it.
func ByWorldsOWA(q ra.Expr, d *table.Database, opts Options) (*table.Relation, error) {
	return defaultEvaluator().ByWorldsOWA(q, d, opts)
}

// CertainObjectCWA computes certainO(Q,D) under CWA: the greatest lower
// bound, in the ⪯owa ordering on answers, of { Q(D') | D' ∈ [[D]]cwa } over
// the enumerated worlds.  For monotone generic queries the theorem of
// Section 6.1 says this equals Q(D) itself (naïve evaluation, nulls kept);
// experiment E8/E11 verify the equality.
func CertainObjectCWA(q ra.Expr, d *table.Database, opts Options) (*table.Relation, error) {
	return defaultEvaluator().CertainObjectCWA(q, d, opts)
}

// BoolCertainCWA computes the certain answer of a Boolean query under CWA
// by world enumeration: true iff the query is nonempty in every world.  It
// evaluates through a valuation view (no world materialization) and stops
// at the first counterexample world.
func BoolCertainCWA(q ra.Expr, d *table.Database, opts Options) (bool, error) {
	return defaultEvaluator().BoolCertainCWA(q, d, opts)
}

// Comparison is the outcome of comparing naïve-evaluation certain answers
// against world-enumeration ground truth.
type Comparison struct {
	// Agree reports whether the two answer sets are identical.
	Agree bool
	// MissingFromNaive are certain tuples that naïve evaluation failed to
	// return (false negatives; cannot happen for the sound fragments).
	MissingFromNaive []table.Tuple
	// SpuriousInNaive are tuples naïve evaluation returned that are not
	// certain (false positives; the π(R−S) example produces one).
	SpuriousInNaive []table.Tuple
}

// Compare checks naïve-evaluation certain answers against the
// world-enumeration ground truth under CWA.
func Compare(q ra.Expr, d *table.Database, opts Options) (Comparison, error) {
	return defaultEvaluator().Compare(q, d, opts)
}

func diffRelations(naive, truth *table.Relation) Comparison {
	cmp := Comparison{Agree: naive.Equal(truth)}
	truth.Each(func(t table.Tuple) bool {
		if !naive.Contains(t) {
			cmp.MissingFromNaive = append(cmp.MissingFromNaive, t.Clone())
		}
		return true
	})
	naive.Each(func(t table.Tuple) bool {
		if !truth.Contains(t) {
			cmp.SpuriousInNaive = append(cmp.SpuriousInNaive, t.Clone())
		}
		return true
	})
	return cmp
}

// EvaluationReport compares an arbitrary answer relation (for example the
// output of the SQL baseline) against the certain answers: which certain
// tuples it missed and which uncertain tuples it reported.
func EvaluationReport(answer, certainAnswers *table.Relation) Comparison {
	return diffRelations(answer, certainAnswers)
}
