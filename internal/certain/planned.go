package certain

import (
	"sync"
	"sync/atomic"

	"incdata/internal/plan"
	"incdata/internal/ra"
	"incdata/internal/semantics"
	"incdata/internal/table"
	"incdata/internal/valuation"
)

// Planner-backed world enumeration.  plan.ForWorlds factors the query into
// a world-invariant stable part, evaluated once, and a per-valuation delta
// plan; the certain-answer combinators below exploit the factorization
// directly:
//
//   - Intersection: ⋂_v (S ∪ D_v) = S ∪ ⋂_v D_v, so the running
//     intersection touches only the (tiny) deltas.
//   - Boolean certainty: a nonempty stable part is a lower bound of every
//     world's answer, so the query is certainly true without enumerating a
//     single world; otherwise only the delta decides each world.
//   - certainO answer collection: worlds are deduplicated by the canonical
//     key of the normalized delta (the stable part is fixed), so full
//     answers are materialized once per distinct answer, not per world.
//
// Non-splittable plans (difference with a world-dependent right side,
// division) fall back to per-world full evaluation, which still reuses
// every world-invariant subtree and its hash indexes.

// worldPlanFor returns the factored world plan for q over d, or nil when
// the planner is disabled or cannot compile the expression (the caller
// then uses the oracle path, preserving error behavior exactly).
func (ev *Evaluator) worldPlanFor(q ra.Expr, d *table.Database) *plan.WorldPlan {
	if !ev.planner {
		return nil
	}
	wp, err := ev.cachedForWorlds(q, d)
	if err != nil {
		return nil
	}
	return wp
}

// intersectWorldsPlanned computes ⋂ { Q(v(D)) | v } through the factored
// plan.
func intersectWorldsPlanned(wp *plan.WorldPlan, d *table.Database, dom semantics.Domain, workers int) (*table.Relation, error) {
	wp.SetWorkers(workers) // stable parts compute partition-parallel
	if workers > 1 {
		return parallelIntersectPlanned(wp, d, dom, workers)
	}
	sess := wp.AcquireSession()
	defer wp.ReleaseSession(sess)
	var running *table.Relation
	saw := false
	var evalErr error
	if wp.Splittable() {
		// Running intersection of the deltas as a slice of keyed tuples:
		// per world only membership probes against the current delta, no
		// map copying.  Stored tuples are immutable, so retaining them
		// across scratch resets is safe.
		type cand struct {
			key string
			t   table.Tuple
		}
		var cands []cand
		valuation.Enumerate(wp.SortedNulls(), dom.Values(), func(v valuation.Valuation) bool {
			delta, err := sess.Delta(v)
			if err != nil {
				evalErr = err
				return false
			}
			if !saw {
				saw = true
				delta.EachKeyed(func(k string, t table.Tuple) bool {
					cands = append(cands, cand{key: k, t: t})
					return true
				})
			} else {
				w := 0
				for _, c := range cands {
					if delta.ContainsKeyString(c.key) {
						cands[w] = c
						w++
					}
				}
				cands = cands[:w]
			}
			// Once the delta intersection is empty the result is exactly the
			// stable part; further worlds cannot change it.
			return len(cands) > 0
		})
		if evalErr != nil {
			return nil, evalErr
		}
		if !saw {
			return nil, errNoWorlds
		}
		stable, err := wp.Stable()
		if err != nil {
			return nil, err
		}
		out := table.NewRelation(wp.OutSchema())
		if err := out.AddAll(stable); err != nil {
			return nil, err
		}
		for _, c := range cands {
			out.MustAdd(c.t)
		}
		return out, nil
	}
	valuation.Enumerate(wp.SortedNulls(), dom.Values(), func(v valuation.Valuation) bool {
		saw = true
		ans, err := sess.Answer(v)
		if err != nil {
			evalErr = err
			return false
		}
		if running == nil {
			running = ans.Clone()
		} else {
			running.Retain(ans.Contains)
		}
		return running.Len() > 0
	})
	if evalErr != nil {
		return nil, evalErr
	}
	if !saw {
		return nil, errNoWorlds
	}
	return running.WithSchema(wp.OutSchema()), nil
}

// mergeStableDelta materializes stable ∪ delta under the plan's output
// schema; delta may be nil (no surviving delta tuples).
func mergeStableDelta(wp *plan.WorldPlan, stable, delta *table.Relation) (*table.Relation, error) {
	out := table.NewRelation(wp.OutSchema())
	if err := out.AddAll(stable); err != nil {
		return nil, err
	}
	if delta != nil && delta.Len() > 0 {
		if err := out.AddAll(delta); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// boolCertainPlanned decides Boolean certainty through the factored plan.
func boolCertainPlanned(wp *plan.WorldPlan, d *table.Database, dom semantics.Domain, workers int) (bool, error) {
	wp.SetWorkers(workers) // stable parts compute partition-parallel
	if wp.Splittable() {
		stable, err := wp.Stable()
		if err != nil {
			return false, err
		}
		if stable.Len() > 0 {
			// The stable part is contained in every world's answer: the
			// query is certainly true with zero worlds evaluated.
			return true, nil
		}
		sess := wp.AcquireSession()
		defer wp.ReleaseSession(sess)
		certain := true
		var evalErr error
		valuation.Enumerate(wp.SortedNulls(), dom.Values(), func(v valuation.Valuation) bool {
			delta, err := sess.Delta(v)
			if err != nil {
				evalErr = err
				return false
			}
			if delta.Len() == 0 {
				certain = false
				return false
			}
			return true
		})
		if evalErr != nil {
			return false, evalErr
		}
		return certain, nil
	}
	sess := wp.AcquireSession()
	defer wp.ReleaseSession(sess)
	certain := true
	var evalErr error
	valuation.Enumerate(wp.SortedNulls(), dom.Values(), func(v valuation.Valuation) bool {
		ans, err := sess.Answer(v)
		if err != nil {
			evalErr = err
			return false
		}
		if ans.Len() == 0 {
			certain = false
			return false
		}
		return true
	})
	if evalErr != nil {
		return false, evalErr
	}
	return certain, nil
}

// collectAnswersPlanned gathers the distinct per-world answers through the
// factored plan (for the certainO GLB).
func collectAnswersPlanned(wp *plan.WorldPlan, d *table.Database, dom semantics.Domain, workers int) ([]*table.Relation, error) {
	wp.SetWorkers(workers) // stable parts compute partition-parallel
	if workers > 1 {
		return parallelCollectPlanned(wp, d, dom, workers)
	}
	sess := wp.AcquireSession()
	defer wp.ReleaseSession(sess)
	seen := map[string]bool{}
	var answers []*table.Relation
	var evalErr error
	if wp.Splittable() {
		stable, err := wp.Stable()
		if err != nil {
			return nil, err
		}
		valuation.Enumerate(wp.SortedNulls(), dom.Values(), func(v valuation.Valuation) bool {
			delta, err := sess.Delta(v)
			if err != nil {
				evalErr = err
				return false
			}
			// Normalize so the delta key identifies the full answer: the
			// stable part is fixed across worlds.
			delta.Retain(func(t table.Tuple) bool { return !stable.Contains(t) })
			k := delta.CanonicalKey()
			if !seen[k] {
				seen[k] = true
				full, err := mergeStableDelta(wp, stable, delta)
				if err != nil {
					evalErr = err
					return false
				}
				answers = append(answers, full)
			}
			return true
		})
		if evalErr != nil {
			return nil, evalErr
		}
		return answers, nil
	}
	valuation.Enumerate(wp.SortedNulls(), dom.Values(), func(v valuation.Valuation) bool {
		ans, err := sess.Answer(v)
		if err != nil {
			evalErr = err
			return false
		}
		k := ans.CanonicalKey()
		if !seen[k] {
			seen[k] = true
			answers = append(answers, ans.Clone())
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return answers, nil
}

// runPlannedPool streams valuations to a pool of workers, each owning a
// plan session.  work receives the session's scratch result for the world
// (the delta when the plan is splittable, the full answer otherwise) and
// must clone whatever it retains; returning false stops the enumeration.
func runPlannedPool(wp *plan.WorldPlan, d *table.Database, dom semantics.Domain, workers int,
	work func(w int, rel *table.Relation) bool) error {
	split := wp.Splittable()
	var stop atomic.Bool
	jobs := valuationJobs(d, dom, &stop)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			sess := wp.AcquireSession()
			defer wp.ReleaseSession(sess)
			for v := range jobs {
				if stop.Load() {
					continue // drain; the result is already decided
				}
				var rel *table.Relation
				var err error
				if split {
					rel, err = sess.Delta(v)
				} else {
					rel, err = sess.Answer(v)
				}
				if err != nil {
					errs[w] = err
					stop.Store(true)
					continue
				}
				if !work(w, rel) {
					stop.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// parallelIntersectPlanned is intersectWorldsPlanned over a worker pool:
// per-worker running intersections of the deltas (or full answers), merged
// at the end.
func parallelIntersectPlanned(wp *plan.WorldPlan, d *table.Database, dom semantics.Domain, workers int) (*table.Relation, error) {
	workers = workerCount(workers)
	locals := make([]*table.Relation, workers)
	sawWorld := make([]bool, workers)
	err := runPlannedPool(wp, d, dom, workers, func(w int, rel *table.Relation) bool {
		sawWorld[w] = true
		if locals[w] == nil {
			locals[w] = rel.Clone()
		} else {
			locals[w].Retain(rel.Contains)
		}
		return locals[w].Len() > 0
	})
	if err != nil {
		return nil, err
	}
	var running *table.Relation
	saw := false
	for w, local := range locals {
		if sawWorld[w] {
			saw = true
		}
		if local == nil {
			continue
		}
		if running == nil || local.Len() == 0 {
			running = local
		} else {
			running.Retain(local.Contains)
		}
		if running.Len() == 0 {
			break
		}
	}
	if !saw {
		return nil, errNoWorlds
	}
	if wp.Splittable() {
		stable, err := wp.Stable()
		if err != nil {
			return nil, err
		}
		return mergeStableDelta(wp, stable, running)
	}
	if running == nil {
		return nil, errNoWorlds
	}
	return running.WithSchema(wp.OutSchema()), nil
}

// parallelCollectPlanned is collectAnswersPlanned over a worker pool with
// local dedup; full answers are materialized once per globally distinct
// answer.
func parallelCollectPlanned(wp *plan.WorldPlan, d *table.Database, dom semantics.Domain, workers int) ([]*table.Relation, error) {
	workers = workerCount(workers)
	split := wp.Splittable()
	var stable *table.Relation
	if split {
		var err error
		if stable, err = wp.Stable(); err != nil {
			return nil, err
		}
	}
	type keyed struct {
		key string
		rel *table.Relation // delta clone (split) or full answer clone
	}
	locals := make([][]keyed, workers)
	seenLocal := make([]map[string]bool, workers)
	for w := range seenLocal {
		seenLocal[w] = map[string]bool{}
	}
	err := runPlannedPool(wp, d, dom, workers, func(w int, rel *table.Relation) bool {
		if split {
			rel.Retain(func(t table.Tuple) bool { return !stable.Contains(t) })
		}
		k := rel.CanonicalKey()
		if !seenLocal[w][k] {
			seenLocal[w][k] = true
			locals[w] = append(locals[w], keyed{key: k, rel: rel.Clone()})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var answers []*table.Relation
	for _, l := range locals {
		for _, kr := range l {
			if seen[kr.key] {
				continue
			}
			seen[kr.key] = true
			if split {
				full, err := mergeStableDelta(wp, stable, kr.rel)
				if err != nil {
					return nil, err
				}
				answers = append(answers, full)
			} else {
				answers = append(answers, kr.rel)
			}
		}
	}
	return answers, nil
}
