package certain

import (
	"sync"

	"incdata/internal/plan"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
)

// Plan caches.  Compiling a query or factoring it for world enumeration is
// cheap but not free; callers like the experiment sweeps and a serving
// workload evaluate the same query against the same database over and
// over.  One-shot plans depend only on (schema, query) and are immutable,
// so they are cached unconditionally.  World plans additionally bake in
// the database contents (null parts, cached stable results and their hash
// indexes), so each cache entry records a per-relation version snapshot
// and is invalidated when any relation of the database has been mutated
// since (see table.Relation.Version).

const planCacheLimit = 128

type planCacheKey struct {
	sc *schema.Schema
	q  string
}

var oneShotPlans struct {
	sync.Mutex
	m map[planCacheKey]*plan.Plan
}

// cachedCompile returns a (possibly shared) compiled plan for q over sc.
// Compiled plans are stateless with respect to the data and safe for
// concurrent evaluation.
func cachedCompile(q ra.Expr, sc *schema.Schema) (*plan.Plan, error) {
	key := planCacheKey{sc: sc, q: q.String()}
	oneShotPlans.Lock()
	p := oneShotPlans.m[key]
	oneShotPlans.Unlock()
	if p != nil {
		return p, nil
	}
	p, err := plan.Compile(q, sc)
	if err != nil {
		return nil, err
	}
	oneShotPlans.Lock()
	if oneShotPlans.m == nil || len(oneShotPlans.m) >= planCacheLimit {
		oneShotPlans.m = make(map[planCacheKey]*plan.Plan, planCacheLimit)
	}
	oneShotPlans.m[key] = p
	oneShotPlans.Unlock()
	return p, nil
}

type relSnapshot struct {
	name string
	rel  *table.Relation
	ver  uint64
}

type worldCacheKey struct {
	d *table.Database
	q string
}

type worldCacheEntry struct {
	wp   *plan.WorldPlan
	snap []relSnapshot
}

var worldPlans struct {
	sync.Mutex
	m map[worldCacheKey]*worldCacheEntry
}

func snapshotDB(d *table.Database) []relSnapshot {
	names := d.RelationNames()
	snap := make([]relSnapshot, len(names))
	for i, name := range names {
		rel := d.Relation(name)
		snap[i] = relSnapshot{name: name, rel: rel, ver: rel.Version()}
	}
	return snap
}

func snapshotValid(d *table.Database, snap []relSnapshot) bool {
	for _, s := range snap {
		rel := d.Relation(s.name)
		if rel != s.rel || rel.Version() != s.ver {
			return false
		}
	}
	return true
}

// cachedForWorlds returns a world plan for q over d, reusing a cached one
// when no relation of d has been mutated since it was built.  A reused
// plan keeps its stable subplan results and hash indexes, so repeated
// certain-answer calls pay the invariant evaluation once, total.
func cachedForWorlds(q ra.Expr, d *table.Database) (*plan.WorldPlan, error) {
	key := worldCacheKey{d: d, q: q.String()}
	worldPlans.Lock()
	e := worldPlans.m[key]
	worldPlans.Unlock()
	if e != nil && snapshotValid(d, e.snap) {
		return e.wp, nil
	}
	snap := snapshotDB(d)
	wp, err := plan.ForWorlds(q, d)
	if err != nil {
		return nil, err
	}
	worldPlans.Lock()
	if worldPlans.m == nil || len(worldPlans.m) >= planCacheLimit {
		worldPlans.m = make(map[worldCacheKey]*worldCacheEntry, planCacheLimit)
	}
	worldPlans.m[key] = &worldCacheEntry{wp: wp, snap: snap}
	worldPlans.Unlock()
	return wp, nil
}
