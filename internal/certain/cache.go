package certain

import (
	"sync"

	"incdata/internal/plan"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
)

// Plan caches.  Compiling a query or factoring it for world enumeration is
// cheap but not free; callers like the experiment sweeps and a serving
// workload evaluate the same query against the same database over and
// over.  One-shot plans depend only on (schema, query) and are immutable,
// so they are cached unconditionally.  World plans additionally bake in
// the database contents (null parts, cached stable results and their hash
// indexes), so each cache entry records a content stamp (table.Stamp:
// storage generation + mutation counter) for every base relation the query
// references and is reused exactly when those stamps still match.
//
// Because stamps are carried across copy-on-write shares, reuse works
// across database snapshots: every snapshot of an unmutated database — and
// every snapshot whose writes only touched relations the query does not
// read — validates against the same entry, so repeated certain-answer
// calls pay the invariant evaluation once, total.  The caches are
// per-Evaluator; the engine facade owns the evaluators, so plan caching is
// per-engine state, not process-global.

const planCacheLimit = 128

type planKey struct {
	sc *schema.Schema
	q  string
}

type oneShotCache struct {
	sync.Mutex
	m map[planKey]*plan.Plan
}

// cachedCompile returns a (possibly shared) compiled plan for q over sc.
// Compiled plans are stateless with respect to the data and safe for
// concurrent evaluation.
func (ev *Evaluator) cachedCompile(q ra.Expr, sc *schema.Schema) (*plan.Plan, error) {
	key := planKey{sc: sc, q: q.String()}
	ev.oneShot.Lock()
	p := ev.oneShot.m[key]
	ev.oneShot.Unlock()
	if p != nil {
		ev.oneShotHits.Add(1)
		return p, nil
	}
	ev.oneShotMisses.Add(1)
	p, err := plan.Compile(q, sc)
	if err != nil {
		return nil, err
	}
	ev.oneShot.Lock()
	if ev.oneShot.m == nil || len(ev.oneShot.m) >= planCacheLimit {
		ev.oneShot.m = make(map[planKey]*plan.Plan, planCacheLimit)
	}
	ev.oneShot.m[key] = p
	ev.oneShot.Unlock()
	return p, nil
}

// relDep is one relation a world plan was built from, with the content
// stamp observed at build time.
type relDep struct {
	name  string
	stamp table.Stamp
}

type worldEntry struct {
	wp   *plan.WorldPlan
	deps []relDep
}

type worldCache struct {
	sync.Mutex
	m map[planKey]*worldEntry
}

// worldDeps captures the stamps a world plan for q over d depends on, or
// ok=false when a referenced relation does not exist (the caller lets plan
// construction produce the error).
func worldDeps(q ra.Expr, d *table.Database) (deps []relDep, ok bool) {
	names, wholeDB := ra.BaseRelations(q)
	if wholeDB {
		names = d.RelationNames()
	}
	deps = make([]relDep, 0, len(names))
	for _, name := range names {
		rel := d.Relation(name)
		if rel == nil {
			return nil, false
		}
		deps = append(deps, relDep{name: name, stamp: rel.Stamp()})
	}
	return deps, true
}

// depsValid reports whether every dependency's relation still holds the
// stamped content in d.  Stamps with a zero generation never validate
// (they belong to no storage).
func depsValid(d *table.Database, deps []relDep) bool {
	for _, dep := range deps {
		rel := d.Relation(dep.name)
		if rel == nil {
			return false
		}
		st := rel.Stamp()
		if st.Gen == 0 || st != dep.stamp {
			return false
		}
	}
	return true
}

// cachedForWorlds returns a world plan for q over d, reusing a cached one
// when every relation the query reads still matches the stamp it was built
// against — including across snapshots of the same database.  A reused
// plan keeps its stable subplan results and hash indexes.
func (ev *Evaluator) cachedForWorlds(q ra.Expr, d *table.Database) (*plan.WorldPlan, error) {
	key := planKey{sc: d.Schema(), q: q.String()}
	ev.worlds.Lock()
	e := ev.worlds.m[key]
	ev.worlds.Unlock()
	if e != nil && depsValid(d, e.deps) {
		ev.worldHits.Add(1)
		return e.wp, nil
	}
	ev.worldMisses.Add(1)
	wp, err := plan.ForWorlds(q, d)
	if err != nil {
		return nil, err
	}
	deps, ok := worldDeps(q, d)
	if !ok {
		// A referenced relation is missing; ForWorlds should have failed,
		// but never cache an unvalidatable plan.
		return wp, nil
	}
	ev.worlds.Lock()
	if ev.worlds.m == nil || len(ev.worlds.m) >= planCacheLimit {
		ev.worlds.m = make(map[planKey]*worldEntry, planCacheLimit)
	}
	ev.worlds.m[key] = &worldEntry{wp: wp, deps: deps}
	ev.worlds.Unlock()
	return wp, nil
}
