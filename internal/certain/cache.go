package certain

import (
	"container/list"
	"sync"

	"incdata/internal/plan"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
)

// Plan caches.  Compiling a query or factoring it for world enumeration is
// cheap but not free; callers like the experiment sweeps and a serving
// workload evaluate the same query against the same database over and
// over.  Both caches are bounded LRUs (planCacheLimit entries): a workload
// streaming many distinct queries evicts its least-recently-used plans
// instead of growing without limit, and evictions are counted in
// CacheStats.  One-shot plans depend only on (schema, query) and are
// immutable, so they are cached unconditionally.  World plans additionally
// bake in
// the database contents (null parts, cached stable results and their hash
// indexes), so each cache entry records a content stamp (table.Stamp:
// storage generation + mutation counter) for every base relation the query
// references and is reused exactly when those stamps still match.
//
// Because stamps are carried across copy-on-write shares, reuse works
// across database snapshots: every snapshot of an unmutated database — and
// every snapshot whose writes only touched relations the query does not
// read — validates against the same entry, so repeated certain-answer
// calls pay the invariant evaluation once, total.  The caches are
// per-Evaluator; the engine facade owns the evaluators, so plan caching is
// per-engine state, not process-global.

// planCacheLimit caps each cache: the least-recently-used entry is evicted
// when a new one would exceed it, so an engine serving many distinct
// queries (or time-traveling across many commits) holds at most this many
// plans per cache instead of growing without bound.
const planCacheLimit = 128

type planKey struct {
	sc *schema.Schema
	q  string
}

// lru is a mutex-guarded LRU map from plan keys to cached values, used by
// both plan caches.  The zero value is ready to use.
type lru[V any] struct {
	sync.Mutex
	ll    *list.List // front = most recently used
	items map[planKey]*list.Element
}

type lruEntry[V any] struct {
	key planKey
	val V
}

// get returns the cached value and marks it most recently used.
func (c *lru[V]) get(key planKey) (V, bool) {
	c.Lock()
	defer c.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// add inserts (or replaces) a cached value and reports how many entries
// were evicted to stay within the cap.
func (c *lru[V]) add(key planKey, val V) (evicted uint64) {
	c.Lock()
	defer c.Unlock()
	if c.items == nil {
		c.items = make(map[planKey]*list.Element, planCacheLimit)
		c.ll = list.New()
	}
	if el, ok := c.items[key]; ok {
		el.Value = lruEntry[V]{key: key, val: val}
		c.ll.MoveToFront(el)
		return 0
	}
	c.items[key] = c.ll.PushFront(lruEntry[V]{key: key, val: val})
	for len(c.items) > planCacheLimit {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(lruEntry[V]).key)
		evicted++
	}
	return evicted
}

// len returns the number of cached entries.
func (c *lru[V]) len() int {
	c.Lock()
	defer c.Unlock()
	return len(c.items)
}

type oneShotCache = lru[*plan.Plan]

// cachedCompile returns a (possibly shared) compiled plan for q over sc.
// Compiled plans are stateless with respect to the data and safe for
// concurrent evaluation.
func (ev *Evaluator) cachedCompile(q ra.Expr, sc *schema.Schema) (*plan.Plan, error) {
	key := planKey{sc: sc, q: q.String()}
	if p, ok := ev.oneShot.get(key); ok {
		ev.oneShotHits.Add(1)
		return p, nil
	}
	ev.oneShotMisses.Add(1)
	p, err := plan.Compile(q, sc)
	if err != nil {
		return nil, err
	}
	ev.oneShotEvictions.Add(ev.oneShot.add(key, p))
	return p, nil
}

// relDep is one relation a world plan was built from, with the content
// stamp observed at build time.
type relDep struct {
	name  string
	stamp table.Stamp
}

type worldEntry struct {
	wp   *plan.WorldPlan
	deps []relDep
}

type worldCache = lru[*worldEntry]

// worldDeps captures the stamps a world plan for q over d depends on, or
// ok=false when a referenced relation does not exist (the caller lets plan
// construction produce the error).
func worldDeps(q ra.Expr, d *table.Database) (deps []relDep, ok bool) {
	names, wholeDB := ra.BaseRelations(q)
	if wholeDB {
		names = d.RelationNames()
	}
	deps = make([]relDep, 0, len(names))
	for _, name := range names {
		rel := d.Relation(name)
		if rel == nil {
			return nil, false
		}
		deps = append(deps, relDep{name: name, stamp: rel.Stamp()})
	}
	return deps, true
}

// depsValid reports whether every dependency's relation still holds the
// stamped content in d.  Stamps with a zero generation never validate
// (they belong to no storage).
func depsValid(d *table.Database, deps []relDep) bool {
	for _, dep := range deps {
		rel := d.Relation(dep.name)
		if rel == nil {
			return false
		}
		st := rel.Stamp()
		if st.Gen == 0 || st != dep.stamp {
			return false
		}
	}
	return true
}

// cachedForWorlds returns a world plan for q over d, reusing a cached one
// when every relation the query reads still matches the stamp it was built
// against — including across snapshots of the same database.  A reused
// plan keeps its stable subplan results and hash indexes.
func (ev *Evaluator) cachedForWorlds(q ra.Expr, d *table.Database) (*plan.WorldPlan, error) {
	key := planKey{sc: d.Schema(), q: q.String()}
	if e, ok := ev.worlds.get(key); ok && depsValid(d, e.deps) {
		ev.worldHits.Add(1)
		return e.wp, nil
	}
	ev.worldMisses.Add(1)
	wp, err := plan.ForWorlds(q, d)
	if err != nil {
		return nil, err
	}
	deps, ok := worldDeps(q, d)
	if !ok {
		// A referenced relation is missing; ForWorlds should have failed,
		// but never cache an unvalidatable plan.
		return wp, nil
	}
	ev.worldEvictions.Add(ev.worlds.add(key, &worldEntry{wp: wp, deps: deps}))
	return wp, nil
}
