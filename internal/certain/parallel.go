package certain

import (
	"runtime"
	"sync"

	"incdata/internal/ra"
	"incdata/internal/table"
)

// parallelAnswers evaluates the query on every world using a bounded worker
// pool.  World evaluation is embarrassingly parallel; only the final
// intersection / GLB is sequential.
func parallelAnswers(q ra.Expr, worlds []*table.Database, workers int) ([]*table.Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(worlds) {
		workers = len(worlds)
	}
	if workers <= 1 {
		return answersOnWorlds(q, worlds, 1)
	}

	answers := make([]*table.Relation, len(worlds))
	errs := make([]error, len(worlds))
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				answers[i], errs[i] = ra.Eval(q, worlds[i])
			}
		}()
	}
	for i := range worlds {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return answers, nil
}
