package certain

import (
	"runtime"
	"sync"
	"sync/atomic"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/semantics"
	"incdata/internal/table"
	"incdata/internal/valuation"
	"incdata/internal/value"
)

// worldView presents v(D) to the evaluator without materializing a database
// per valuation: base relations are substituted on the fly the first time a
// world's evaluation scans them, into per-view scratch relations whose map
// storage is reused from world to world.  It implements ra.DB.
type worldView struct {
	base *table.Database
	val  valuation.Valuation
	rels map[string]*table.Relation // per-relation scratch, reused across worlds
	live map[string]bool            // scratch entries valid for the current valuation
}

func newWorldView(d *table.Database) *worldView {
	return &worldView{
		base: d,
		rels: make(map[string]*table.Relation),
		live: make(map[string]bool),
	}
}

// setValuation moves the view to the next world; scratch storage is kept.
func (w *worldView) setValuation(v valuation.Valuation) {
	w.val = v
	clear(w.live)
}

// Relation returns the named relation of the current world.
func (w *worldView) Relation(name string) *table.Relation {
	base := w.base.Relation(name)
	if base == nil {
		return nil
	}
	if len(w.val) == 0 {
		// No nulls to substitute: the base relation is the world.
		return base
	}
	if w.live[name] {
		return w.rels[name]
	}
	scr := w.rels[name]
	if scr == nil {
		scr = table.NewRelation(base.Schema())
		w.rels[name] = scr
	}
	scr.FillMapped(base, w.val.ApplyValue)
	w.live[name] = true
	return scr
}

// Schema returns the base schema (valuations do not change the schema).
func (w *worldView) Schema() *schema.Schema { return w.base.Schema() }

// ActiveDomain returns adom(v(D)) = v(adom(D)).
func (w *worldView) ActiveDomain() map[value.Value]bool {
	out := map[value.Value]bool{}
	for v := range w.base.ActiveDomain() {
		out[w.val.ApplyValue(v)] = true
	}
	return out
}

// forEachWorldAnswer evaluates q on every CWA world of d over dom through a
// valuation view, calling fn with each answer.  The answer passed to fn is
// only valid during the call; fn must Clone it (copy-on-write, cheap) to
// retain it.  Enumeration stops early when fn returns false.  Valuations
// yielding identical worlds are not deduplicated — re-evaluating a
// duplicate world is cheaper than detecting it, and the certain-answer
// combinators (intersection, GLB after answer dedup) are insensitive to
// multiplicity.
func forEachWorldAnswer(q ra.Expr, d *table.Database, dom semantics.Domain, fn func(*table.Relation) bool) error {
	view := newWorldView(d)
	var evalErr error
	valuation.Enumerate(d.SortedNulls(), dom.Values(), func(v valuation.Valuation) bool {
		view.setValuation(v)
		ans, err := ra.EvalDB(q, view)
		if err != nil {
			evalErr = err
			return false
		}
		return fn(ans)
	})
	return evalErr
}

// intersectWorldsCWA computes ⋂ { Q(v(D)) | v } over dom, maintaining a
// running intersection and aborting the enumeration as soon as it is empty
// (sound for any query: intersecting further worlds cannot grow it).  With
// the planner enabled the query is factored into a world-invariant stable
// part and per-valuation deltas, and only the deltas are intersected (see
// planned.go); this oracle path remains for planner-off runs and for
// expressions the planner rejects.
func (ev *Evaluator) intersectWorldsCWA(q ra.Expr, d *table.Database, dom semantics.Domain, workers int) (*table.Relation, error) {
	if wp := ev.worldPlanFor(q, d); wp != nil {
		return intersectWorldsPlanned(wp, d, dom, workers)
	}
	if workers > 1 {
		return parallelIntersectCWA(q, d, dom, workers)
	}
	var running *table.Relation
	err := forEachWorldAnswer(q, d, dom, func(ans *table.Relation) bool {
		if running == nil {
			running = ans.Clone()
		} else {
			running.Retain(ans.Contains)
		}
		return running.Len() > 0
	})
	if err != nil {
		return nil, err
	}
	if running == nil {
		return nil, errNoWorlds
	}
	return running, nil
}

// collectAnswersCWA evaluates q on every CWA world over dom and returns the
// distinct answers (deduplicated by canonical key; duplicate worlds and
// worlds with equal answers collapse).  The GLB construction is invariant
// under duplicates, so deduplication is purely an optimization.
func (ev *Evaluator) collectAnswersCWA(q ra.Expr, d *table.Database, dom semantics.Domain, workers int) ([]*table.Relation, error) {
	if wp := ev.worldPlanFor(q, d); wp != nil {
		return collectAnswersPlanned(wp, d, dom, workers)
	}
	if workers > 1 {
		return parallelCollectAnswers(q, d, dom, workers)
	}
	seen := map[string]bool{}
	var answers []*table.Relation
	err := forEachWorldAnswer(q, d, dom, func(ans *table.Relation) bool {
		k := ans.CanonicalKey()
		if !seen[k] {
			seen[k] = true
			answers = append(answers, ans.Clone())
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return answers, nil
}

// valuationJobs feeds cloned valuations to workers, stopping early when the
// flag is raised.  It closes jobs when enumeration ends.
func valuationJobs(d *table.Database, dom semantics.Domain, stop *atomic.Bool) <-chan valuation.Valuation {
	jobs := make(chan valuation.Valuation, 64)
	go func() {
		defer close(jobs)
		valuation.Enumerate(d.SortedNulls(), dom.Values(), func(v valuation.Valuation) bool {
			if stop.Load() {
				return false
			}
			jobs <- v.Clone()
			return true
		})
	}()
	return jobs
}

func workerCount(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// runWorldPool splits the valuation stream over a worker pool.  Each worker
// owns a valuation view (scratch reused from world to world) and calls work
// for every job; work returning false raises a global stop flag that makes
// all workers drain the remaining jobs without evaluating them.  The errs
// slice collects per-worker evaluation errors.
func runWorldPool(q ra.Expr, d *table.Database, dom semantics.Domain, workers int, errs []error,
	work func(w int, ans *table.Relation) bool) error {
	var stop atomic.Bool
	jobs := valuationJobs(d, dom, &stop)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			view := newWorldView(d)
			for v := range jobs {
				if stop.Load() {
					continue // drain; the result is already decided
				}
				view.setValuation(v)
				ans, err := ra.EvalDB(q, view)
				if err != nil {
					errs[w] = err
					stop.Store(true)
					continue
				}
				if !work(w, ans) {
					stop.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// parallelIntersectCWA splits the valuation stream over a worker pool; each
// worker keeps a running local intersection (world evaluation reuses the
// worker's valuation-view scratch), and the locals are intersected at the
// end.  Any empty local intersection makes the global result empty, so it
// raises the stop flag for early exit.
func parallelIntersectCWA(q ra.Expr, d *table.Database, dom semantics.Domain, workers int) (*table.Relation, error) {
	workers = workerCount(workers)
	locals := make([]*table.Relation, workers)
	err := runWorldPool(q, d, dom, workers, make([]error, workers), func(w int, ans *table.Relation) bool {
		if locals[w] == nil {
			locals[w] = ans.Clone()
		} else {
			locals[w].Retain(ans.Contains)
		}
		return locals[w].Len() > 0
	})
	if err != nil {
		return nil, err
	}
	var running *table.Relation
	for _, local := range locals {
		if local == nil {
			continue
		}
		if running == nil || local.Len() == 0 {
			running = local
		} else {
			running.Retain(local.Contains)
		}
		if running.Len() == 0 {
			return running, nil
		}
	}
	if running == nil {
		return nil, errNoWorlds
	}
	return running, nil
}

// parallelCollectAnswers gathers the distinct answers over all worlds using
// a worker pool with per-worker valuation-view scratch and local dedup.
func parallelCollectAnswers(q ra.Expr, d *table.Database, dom semantics.Domain, workers int) ([]*table.Relation, error) {
	workers = workerCount(workers)
	type local struct {
		seen    map[string]bool
		answers []*table.Relation
	}
	locals := make([]local, workers)
	for w := range locals {
		locals[w].seen = map[string]bool{}
	}
	err := runWorldPool(q, d, dom, workers, make([]error, workers), func(w int, ans *table.Relation) bool {
		k := ans.CanonicalKey()
		if !locals[w].seen[k] {
			locals[w].seen[k] = true
			locals[w].answers = append(locals[w].answers, ans.Clone())
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var answers []*table.Relation
	for _, l := range locals {
		for _, ans := range l.answers {
			ck := ans.CanonicalKey()
			if !seen[ck] {
				seen[ck] = true
				answers = append(answers, ans)
			}
		}
	}
	return answers, nil
}

// answersOnWorlds evaluates the query on every (already materialized) world,
// possibly in parallel.  It remains the path for OWA enumeration with extra
// tuples, where worlds are genuine supersets that a valuation view cannot
// express.
func answersOnWorlds(q ra.Expr, worlds []*table.Database, workers int) ([]*table.Relation, error) {
	if workers > 1 {
		return parallelAnswers(q, worlds, workers)
	}
	out := make([]*table.Relation, len(worlds))
	for i, w := range worlds {
		r, err := ra.Eval(q, w)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// parallelAnswers evaluates the query on every world using a bounded worker
// pool.  World evaluation is embarrassingly parallel; only the final
// intersection / GLB is sequential.
func parallelAnswers(q ra.Expr, worlds []*table.Database, workers int) ([]*table.Relation, error) {
	workers = workerCount(workers)
	if workers > len(worlds) {
		workers = len(worlds)
	}
	if workers <= 1 {
		return answersOnWorlds(q, worlds, 1)
	}

	answers := make([]*table.Relation, len(worlds))
	errs := make([]error, len(worlds))
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				answers[i], errs[i] = ra.Eval(q, worlds[i])
			}
		}()
	}
	for i := range worlds {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return answers, nil
}
