package certain

import (
	"errors"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

func db2(t *testing.T, schemaDef map[string]int, rows map[string][][]string) *table.Database {
	t.Helper()
	var rels []schema.Relation
	for name, arity := range schemaDef {
		rels = append(rels, schema.WithArity(name, arity))
	}
	s, err := schema.New(rels...)
	if err != nil {
		t.Fatal(err)
	}
	d := table.NewDatabase(s)
	for name, rr := range rows {
		for _, r := range rr {
			d.MustAddRow(name, r...)
		}
	}
	return d
}

// Grant's example as relational algebra: σ[order='oid1' ∨ order≠'oid1'](Pay)
// projected to p_id.  The certain answer is {pid1}; naïve evaluation also
// returns {pid1} (the tautology holds under marked-null identity too,
// because ⊥='oid1' ∨ ⊥≠'oid1' is a tautology of two-valued logic).
func TestTautologyCertain(t *testing.T) {
	d := db2(t,
		map[string]int{"Pay": 3},
		map[string][][]string{"Pay": {{"pid1", "⊥1", "100"}}})
	// Rename attributes for readability: #1=p_id, #2=order, #3=amount.
	q := ra.Project{
		Input: ra.Select{
			Input: ra.Base("Pay"),
			Pred: ra.AnyOf(
				ra.Eq(ra.Attr("#2"), ra.LitString("oid1")),
				ra.Neq(ra.Attr("#2"), ra.LitString("oid1")),
			),
		},
		Attrs: []string{"#1"},
	}
	truth, err := ByWorldsCWA(q, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if truth.Len() != 1 || !truth.Contains(table.MustParseTuple("pid1")) {
		t.Fatalf("certain answer should be {pid1}, got %v", truth)
	}
	naive, err := Naive(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(truth) {
		t.Errorf("naïve = %v, truth = %v", naive, truth)
	}
}

// The unpaid-orders scenario: certain answers via world enumeration say
// that at least one order is unpaid, and identify oid2 as certainly unpaid
// when the null can only be oid1... here the null ranges over fresh values
// too, so no individual order is certain — but the Boolean query "is some
// order unpaid" is certainly true.  This mirrors the paper's discussion.
func TestUnpaidOrdersCertain(t *testing.T) {
	d := db2(t,
		map[string]int{"Order": 2, "Pay": 3},
		map[string][][]string{
			"Order": {{"oid1", "pr1"}, {"oid2", "pr2"}},
			"Pay":   {{"pid1", "⊥1", "100"}},
		})
	// Unpaid orders: π_#1(Order) − π_#2(Pay) (as single-attribute relations).
	unpaid := ra.Diff{
		Left:  ra.Rename{Input: ra.Project{Input: ra.Base("Order"), Attrs: []string{"#1"}}, As: "O", Attrs: []string{"x"}},
		Right: ra.Rename{Input: ra.Project{Input: ra.Base("Pay"), Attrs: []string{"#2"}}, As: "P", Attrs: []string{"x"}},
	}
	// Tuple-level certain answers: no single order is certainly unpaid
	// (the null could be either oid1 or oid2).
	truth, err := ByWorldsCWA(unpaid, d, Options{ExtraFresh: 1})
	if err != nil {
		t.Fatal(err)
	}
	if truth.Len() != 0 {
		t.Fatalf("no individual order is certainly unpaid, got %v", truth)
	}
	// But the Boolean query "some order is unpaid" is certainly true, since
	// |Order| = 2 > 1 = |Pay|.
	someUnpaid, err := BoolCertainCWA(unpaid, d, Options{ExtraFresh: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !someUnpaid {
		t.Error("it is certain that some order is unpaid")
	}
	// SQL (the NOT IN query) returns the empty set; comparing that against
	// the certain answers reports no false positives and no missing tuples
	// at tuple level, but the Boolean information is lost — E1 quantifies
	// this on generated workloads.
	empty := table.NewRelationArity("sql", 1)
	rep := EvaluationReport(empty, truth)
	if !rep.Agree || len(rep.SpuriousInNaive) != 0 || len(rep.MissingFromNaive) != 0 {
		t.Errorf("report = %+v", rep)
	}
}

// Naïve evaluation fails for π_A(R−S): R = {(1,⊥)}, S = {(1,⊥')}.  Naïve
// evaluation returns {1}; the certain answer is ∅.
func TestNaiveFailsForProjectionOfDifference(t *testing.T) {
	d := db2(t,
		map[string]int{"R": 2, "S": 2},
		map[string][][]string{"R": {{"1", "⊥1"}}, "S": {{"1", "⊥2"}}})
	q := ra.Project{Input: ra.Diff{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"#1"}}

	naive, err := Naive(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Len() != 1 || !naive.Contains(table.MustParseTuple("1")) {
		t.Fatalf("naïve evaluation should return {1}, got %v", naive)
	}
	truth, err := ByWorldsCWA(q, d, Options{ExtraFresh: 2})
	if err != nil {
		t.Fatal(err)
	}
	if truth.Len() != 0 {
		t.Fatalf("certain answer should be empty, got %v", truth)
	}
	cmp, err := Compare(q, d, Options{ExtraFresh: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Agree || len(cmp.SpuriousInNaive) != 1 || len(cmp.MissingFromNaive) != 0 {
		t.Errorf("comparison = %+v", cmp)
	}
	// The query is not in a sound fragment, which is what the classifier says.
	if ra.NaiveEvalSound(q, true) {
		t.Error("classifier should not declare π(R−S) sound")
	}
}

// For positive queries naïve evaluation agrees with world enumeration under
// CWA and OWA (equation (4)).
func TestNaiveAgreesForPositiveQueries(t *testing.T) {
	d := db2(t,
		map[string]int{"R": 2, "S": 2},
		map[string][][]string{
			"R": {{"1", "⊥1"}, {"⊥1", "2"}, {"3", "4"}},
			"S": {{"⊥1", "2"}, {"3", "⊥2"}},
		})
	queries := []ra.Expr{
		ra.Base("R"),
		ra.Project{Input: ra.Base("R"), Attrs: []string{"#1"}},
		ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("#1"), ra.LitInt(1))},
		ra.Union{Left: ra.Base("R"), Right: ra.Base("S")},
		ra.Intersect{Left: ra.Base("R"), Right: ra.Base("S")},
		ra.Join{Left: ra.Rename{Input: ra.Base("R"), As: "R1", Attrs: []string{"a", "b"}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S1", Attrs: []string{"b", "c"}}},
	}
	for _, q := range queries {
		if !ra.IsPositive(q) {
			t.Fatalf("%s should be positive", q)
		}
		naive, err := Naive(q, d)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		cwa, err := ByWorldsCWA(q, d, Options{ExtraFresh: 2, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !naive.Equal(cwa) {
			t.Errorf("%s: naïve %v != CWA truth %v", q, naive, cwa)
		}
		owa, err := ByWorldsOWA(q, d, Options{ExtraFresh: 2, MaxExtraTuples: 1})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !naive.Equal(owa) {
			t.Errorf("%s: naïve %v != OWA truth %v", q, naive, owa)
		}
	}
}

// Division under CWA: cwa-naïve evaluation works for RAcwa (Section 6.2).
func TestDivisionUnderCWA(t *testing.T) {
	d := db2(t,
		map[string]int{"Enroll": 2, "Course": 1},
		map[string][][]string{
			"Enroll": {{"alice", "db"}, {"alice", "os"}, {"bob", "db"}, {"carol", "⊥1"}},
			"Course": {{"db"}, {"os"}},
		})
	// Rename so division can match attribute names.
	q := ra.Division{
		Left:  ra.Rename{Input: ra.Base("Enroll"), As: "E", Attrs: []string{"student", "course"}},
		Right: ra.Rename{Input: ra.Base("Course"), As: "C", Attrs: []string{"course"}},
	}
	if !ra.IsRAcwa(q) {
		t.Fatal("division by base relation should be RAcwa")
	}
	naive, err := Naive(q, d)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ByWorldsCWA(q, d, Options{ExtraFresh: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(truth) {
		t.Errorf("cwa-naïve evaluation should work for division: naïve %v, truth %v", naive, truth)
	}
	if naive.Len() != 1 || !naive.Contains(table.MustParseTuple("alice")) {
		t.Errorf("alice takes all courses: %v", naive)
	}
}

// certainO(Q,D) = Q(D) for monotone generic queries (equation (9)): the GLB
// of the answers over all worlds is hom-equivalent to the naïve answer.
func TestCertainObjectEqualsNaiveForMonotone(t *testing.T) {
	d := db2(t,
		map[string]int{"R": 2},
		map[string][][]string{"R": {{"1", "2"}, {"2", "⊥1"}}})
	q := ra.Base("R")
	glb, err := CertainObjectCWA(q, d, Options{ExtraFresh: 1})
	if err != nil {
		t.Fatal(err)
	}
	naiveRaw, err := NaiveRaw(q, d)
	if err != nil {
		t.Fatal(err)
	}
	// Hom-equivalence of the two answer objects (as single-relation dbs).
	if glb.Len() != naiveRaw.Len() {
		t.Fatalf("certainO %v vs naïve %v: tuple counts differ", glb, naiveRaw)
	}
	if !glb.Contains(table.MustParseTuple("1", "2")) {
		t.Errorf("certainO should contain the complete tuple: %v", glb)
	}
	// The partially known tuple (2,⊥) must be remembered by certainO — this
	// is exactly the information the intersection-based answer loses.
	hasPartial := false
	for _, tp := range glb.Tuples() {
		if !tp[0].IsNull() && tp[1].IsNull() {
			hasPartial = true
		}
	}
	if !hasPartial {
		t.Errorf("certainO should keep (2,⊥): %v", glb)
	}
	// Contrast with the intersection-based certain answer {(1,2)}.
	inter, err := ByWorldsCWA(q, d, Options{ExtraFresh: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inter.Len() != 1 {
		t.Errorf("intersection-based answer should be {(1,2)}: %v", inter)
	}
}

func TestOptionsAndErrors(t *testing.T) {
	d := db2(t, map[string]int{"R": 1}, map[string][][]string{"R": {{"⊥1"}, {"⊥2"}, {"⊥3"}}})
	q := ra.Base("R")
	// MaxWorlds bound.
	if _, err := ByWorldsCWA(q, d, Options{ExtraFresh: 3, MaxWorlds: 5}); !errors.Is(err, ErrTooManyWorlds) {
		t.Errorf("expected ErrTooManyWorlds, got %v", err)
	}
	if _, err := ByWorldsOWA(q, d, Options{ExtraFresh: 3, MaxWorlds: 5}); !errors.Is(err, ErrTooManyWorlds) {
		t.Errorf("expected ErrTooManyWorlds, got %v", err)
	}
	if _, err := CertainObjectCWA(q, d, Options{ExtraFresh: 3, MaxWorlds: 5}); !errors.Is(err, ErrTooManyWorlds) {
		t.Errorf("expected ErrTooManyWorlds, got %v", err)
	}
	if _, err := BoolCertainCWA(q, d, Options{ExtraFresh: 3, MaxWorlds: 5}); !errors.Is(err, ErrTooManyWorlds) {
		t.Errorf("expected ErrTooManyWorlds, got %v", err)
	}
	// Bad queries propagate errors everywhere.
	bad := ra.Base("Nope")
	if _, err := Naive(bad, d); err == nil {
		t.Error("Naive should propagate errors")
	}
	if _, err := ByWorldsCWA(bad, d, Options{}); err == nil {
		t.Error("ByWorldsCWA should propagate errors")
	}
	if _, err := ByWorldsOWA(bad, d, Options{}); err == nil {
		t.Error("ByWorldsOWA should propagate errors")
	}
	if _, err := CertainObjectCWA(bad, d, Options{}); err == nil {
		t.Error("CertainObjectCWA should propagate errors")
	}
	if _, err := BoolCertainCWA(bad, d, Options{}); err == nil {
		t.Error("BoolCertainCWA should propagate errors")
	}
	if _, err := Compare(bad, d, Options{}); err == nil {
		t.Error("Compare should propagate errors")
	}
	if _, err := Compare(ra.Diff{Left: ra.Base("R"), Right: ra.Base("Nope")}, d, Options{}); err == nil {
		t.Error("Compare should propagate errors from the ground-truth side")
	}
	// Parallel evaluation error propagation.
	if _, err := parallelAnswers(bad, []*table.Database{d, d, d}, 2); err == nil {
		t.Error("parallelAnswers should propagate errors")
	}
	// Parallel with more workers than worlds degrades gracefully.
	if answers, err := parallelAnswers(q, []*table.Database{d}, 8); err != nil || len(answers) != 1 {
		t.Error("parallelAnswers with a single world should work")
	}
	// Workers <= 0 falls back to GOMAXPROCS.
	if answers, err := parallelAnswers(q, []*table.Database{d, d, d, d}, 0); err != nil || len(answers) != 4 {
		t.Error("parallelAnswers with default workers should work")
	}
}

func TestQueryConstantsEnterDomain(t *testing.T) {
	// A selection constant not present in the database must be considered a
	// possible value of the null, otherwise certain answers are wrong.
	d := db2(t, map[string]int{"R": 1}, map[string][][]string{"R": {{"⊥1"}}})
	q := ra.Select{Input: ra.Base("R"), Pred: ra.Neq(ra.Attr("#1"), ra.LitInt(7))}
	truth, err := ByWorldsCWA(q, d, Options{ExtraFresh: 1})
	if err != nil {
		t.Fatal(err)
	}
	// ⊥1 could be 7, in which case the answer is empty: nothing is certain.
	if truth.Len() != 0 {
		t.Errorf("certain answer should be empty, got %v", truth)
	}
	// Constants inside composed predicates are picked up too.
	q2 := ra.Select{Input: ra.Base("R"), Pred: ra.AllOf(ra.Negate(ra.Eq(ra.Attr("#1"), ra.LitInt(9))))}
	if consts := queryConstants(q2); len(consts) != 1 || consts[0] != value.Int(9) {
		t.Errorf("queryConstants = %v", consts)
	}
	q3 := ra.Join{Left: ra.Select{Input: ra.Base("R"), Pred: ra.AnyOf(ra.Eq(ra.Attr("#1"), ra.LitInt(3)))}, Right: ra.Base("R")}
	if consts := queryConstants(q3); len(consts) != 1 {
		t.Errorf("queryConstants through join = %v", consts)
	}
	q4 := ra.Division{
		Left:  ra.Product{Left: ra.Rename{Input: ra.Base("R"), As: "A", Attrs: []string{"a"}}, Right: ra.Rename{Input: ra.Base("R"), As: "B", Attrs: []string{"b"}}},
		Right: ra.Rename{Input: ra.Base("R"), As: "C", Attrs: []string{"b"}},
	}
	if consts := queryConstants(q4); len(consts) != 0 {
		t.Errorf("queryConstants of constant-free query = %v", consts)
	}
	q5 := ra.Diff{Left: ra.Base("R"), Right: ra.Project{Input: ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("#1"), ra.LitInt(5))}, Attrs: []string{"#1"}}}
	if consts := queryConstants(q5); len(consts) != 1 {
		t.Errorf("queryConstants through diff/project = %v", consts)
	}
	q6 := ra.Union{Left: ra.Base("R"), Right: ra.Intersect{Left: ra.Base("R"), Right: ra.Rename{Input: ra.Base("R"), As: "Z"}}}
	if consts := queryConstants(q6); len(consts) != 0 {
		t.Errorf("queryConstants union/intersect = %v", consts)
	}
}

func TestCompareAgreesForPositive(t *testing.T) {
	d := db2(t, map[string]int{"R": 2}, map[string][][]string{"R": {{"1", "⊥1"}, {"2", "3"}}})
	cmp, err := Compare(ra.Project{Input: ra.Base("R"), Attrs: []string{"#1"}}, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Agree {
		t.Errorf("positive query should agree: %+v", cmp)
	}
}
