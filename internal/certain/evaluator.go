package certain

import (
	"sync/atomic"

	"incdata/internal/order"
	"incdata/internal/plan"
	"incdata/internal/ra"
	"incdata/internal/table"
)

// Evaluator is an instance of the certain-answer machinery with its own
// plan caches and planner setting.  The engine facade (internal/engine)
// owns one Evaluator per planner setting, which is what gives every engine
// its own plan cache and session pool instead of the process-wide globals
// this package used to keep; the package-level functions below remain as
// thin wrappers over shared default instances and serve as the reference
// oracle for differential tests.
//
// An Evaluator is safe for concurrent use: the caches are mutex-guarded,
// compiled one-shot plans are stateless with respect to the data, and
// world plans hand out per-worker sessions from a pool.  The databases
// passed to its methods must not be mutated during evaluation — snapshot
// isolation (table.Database.Snapshot, engine.Engine) is the supported way
// to evaluate concurrently with writers.
type Evaluator struct {
	planner bool

	oneShot oneShotCache
	worlds  worldCache

	oneShotHits      atomic.Uint64
	oneShotMisses    atomic.Uint64
	oneShotEvictions atomic.Uint64
	worldHits        atomic.Uint64
	worldMisses      atomic.Uint64
	worldEvictions   atomic.Uint64
}

// NewEvaluator returns an evaluator with empty caches.  With planner set,
// queries compile to physical plans (pushdown, indexed joins) and world
// enumeration runs over factored world plans; without it every path uses
// the naïve-evaluation oracle (ra.Eval), which computes identical results.
func NewEvaluator(planner bool) *Evaluator {
	return &Evaluator{planner: planner}
}

// PlannerEnabled reports whether the evaluator uses the planner fast paths.
func (ev *Evaluator) PlannerEnabled() bool { return ev.planner }

// CacheStats counts plan-cache traffic.  A world "hit" means a factored
// world plan — including its stable subplan results and their hash
// indexes — was reused, possibly across database snapshots.  Evictions
// count entries dropped by the caches' LRU cap under many distinct
// queries.
type CacheStats struct {
	OneShotHits      uint64
	OneShotMisses    uint64
	OneShotEvictions uint64
	WorldHits        uint64
	WorldMisses      uint64
	WorldEvictions   uint64
}

// Stats returns a point-in-time copy of the cache counters.
func (ev *Evaluator) Stats() CacheStats {
	return CacheStats{
		OneShotHits:      ev.oneShotHits.Load(),
		OneShotMisses:    ev.oneShotMisses.Load(),
		OneShotEvictions: ev.oneShotEvictions.Load(),
		WorldHits:        ev.worldHits.Load(),
		WorldMisses:      ev.worldMisses.Load(),
		WorldEvictions:   ev.worldEvictions.Load(),
	}
}

// NaiveRaw evaluates the query naïvely (nulls as values) without stripping
// nulls from the answer; see the package-level NaiveRaw.
func (ev *Evaluator) NaiveRaw(q ra.Expr, d *table.Database) (*table.Relation, error) {
	return ev.evalMaybePlanned(q, d)
}

// Naive computes certain answers by naïve evaluation followed by dropping
// tuples with nulls; see the package-level Naive.
func (ev *Evaluator) Naive(q ra.Expr, d *table.Database) (*table.Relation, error) {
	if ev.planner {
		if p, err := ev.cachedCompile(q, d.Schema()); err == nil {
			return p.EvalCertain(d)
		}
	}
	r, err := ra.Eval(q, d)
	if err != nil {
		return nil, err
	}
	return ra.StripNulls(r), nil
}

// NaiveWorkers is Naive with a worker budget: with the planner on, the
// compiled plan is evaluated morsel-parallel across the pool (partitioned
// hash joins, see plan.EvalCertainWorkers), producing a result bit-identical
// to Naive's.  workers <= 1 and the oracle path are exactly Naive.
func (ev *Evaluator) NaiveWorkers(q ra.Expr, d *table.Database, workers int) (*table.Relation, error) {
	return ev.NaiveWith(q, d, plan.EvalConfig{Workers: workers, Columnar: true, Coded: true})
}

// NaiveWith is Naive with an explicit plan execution configuration
// (worker budget and columnar/row path selection).  With the planner on
// the compiled plan evaluates under cfg; the oracle path ignores cfg.
// The result is bit-identical to Naive's for every configuration.
func (ev *Evaluator) NaiveWith(q ra.Expr, d *table.Database, cfg plan.EvalConfig) (*table.Relation, error) {
	if ev.planner {
		if p, err := ev.cachedCompile(q, d.Schema()); err == nil {
			return p.EvalCertainWith(d, cfg)
		}
	}
	r, err := ra.Eval(q, d)
	if err != nil {
		return nil, err
	}
	return ra.StripNulls(r), nil
}

// NaiveRawWorkers is NaiveRaw with a worker budget, the raw (nulls kept)
// counterpart of NaiveWorkers; the result is bit-identical to NaiveRaw's.
func (ev *Evaluator) NaiveRawWorkers(q ra.Expr, d *table.Database, workers int) (*table.Relation, error) {
	return ev.NaiveRawWith(q, d, plan.EvalConfig{Workers: workers, Columnar: true, Coded: true})
}

// NaiveRawWith is NaiveRaw with an explicit plan execution configuration,
// the raw (nulls kept) counterpart of NaiveWith; the result is
// bit-identical to NaiveRaw's for every configuration.
func (ev *Evaluator) NaiveRawWith(q ra.Expr, d *table.Database, cfg plan.EvalConfig) (*table.Relation, error) {
	if ev.planner {
		if p, err := ev.cachedCompile(q, d.Schema()); err == nil {
			return p.EvalWith(d, cfg)
		}
	}
	return ra.Eval(q, d)
}

// evalMaybePlanned evaluates through the query planner when it is enabled
// and the expression compiles, falling back to the naïve-evaluation oracle
// otherwise (so unsupported expressions and error cases behave exactly as
// before).
func (ev *Evaluator) evalMaybePlanned(q ra.Expr, d *table.Database) (*table.Relation, error) {
	if ev.planner {
		if p, err := ev.cachedCompile(q, d.Schema()); err == nil {
			return p.Eval(d)
		}
	}
	return ra.Eval(q, d)
}

// ByWorldsCWA computes the intersection-based certain answers under CWA;
// see the package-level ByWorldsCWA.
func (ev *Evaluator) ByWorldsCWA(q ra.Expr, d *table.Database, opts Options) (*table.Relation, error) {
	opts = opts.withDefaults(d).withQueryConstants(q)
	dom := opts.domain(d)
	if err := opts.checkWorldBound(d, dom); err != nil {
		return nil, err
	}
	return ev.intersectWorldsCWA(q, d, dom, opts.Workers)
}

// ByWorldsOWA computes intersection-based certain answers under OWA over
// the enumerated (bounded) world set; see the package-level ByWorldsOWA.
func (ev *Evaluator) ByWorldsOWA(q ra.Expr, d *table.Database, opts Options) (*table.Relation, error) {
	opts = opts.withDefaults(d).withQueryConstants(q)
	if opts.MaxExtraTuples <= 0 {
		// The minimal OWA worlds are exactly the CWA worlds; use the
		// streaming valuation-view path.
		dom := opts.domain(d)
		if err := opts.checkWorldBound(d, dom); err != nil {
			return nil, err
		}
		return ev.intersectWorldsCWA(q, d, dom, opts.Workers)
	}
	worlds, err := collectWorldsOWA(d, opts)
	if err != nil {
		return nil, err
	}
	answers, err := answersOnWorlds(q, worlds, opts.Workers)
	if err != nil {
		return nil, err
	}
	return order.IntersectionRelations(answers)
}

// CertainObjectCWA computes certainO(Q,D) under CWA; see the package-level
// CertainObjectCWA.
func (ev *Evaluator) CertainObjectCWA(q ra.Expr, d *table.Database, opts Options) (*table.Relation, error) {
	opts = opts.withDefaults(d).withQueryConstants(q)
	dom := opts.domain(d)
	if err := opts.checkWorldBound(d, dom); err != nil {
		return nil, err
	}
	answers, err := ev.collectAnswersCWA(q, d, dom, opts.Workers)
	if err != nil {
		return nil, err
	}
	return order.GLBRelationsOWA(answers)
}

// BoolCertainCWA computes the certain answer of a Boolean query under CWA;
// see the package-level BoolCertainCWA.
func (ev *Evaluator) BoolCertainCWA(q ra.Expr, d *table.Database, opts Options) (bool, error) {
	opts = opts.withDefaults(d).withQueryConstants(q)
	dom := opts.domain(d)
	if err := opts.checkWorldBound(d, dom); err != nil {
		return false, err
	}
	if wp := ev.worldPlanFor(q, d); wp != nil {
		return boolCertainPlanned(wp, d, dom, opts.Workers)
	}
	certain := true
	err := forEachWorldAnswer(q, d, dom, func(ans *table.Relation) bool {
		if ans.Len() == 0 {
			certain = false
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return certain, nil
}

// Compare checks naïve-evaluation certain answers against the
// world-enumeration ground truth under CWA; see the package-level Compare.
func (ev *Evaluator) Compare(q ra.Expr, d *table.Database, opts Options) (Comparison, error) {
	naive, err := ev.Naive(q, d)
	if err != nil {
		return Comparison{}, err
	}
	truth, err := ev.ByWorldsCWA(q, d, opts)
	if err != nil {
		return Comparison{}, err
	}
	return diffRelations(naive, truth), nil
}
