package certain

import (
	"math"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// TestExtraConstantsNotAliased is the regression test for the option
// aliasing bug: appending query constants to opts.ExtraConstants used to
// write into the caller's backing array, so a reused Options value could
// carry one query's constants into the next call.
func TestExtraConstantsNotAliased(t *testing.T) {
	s := schema.MustNew(schema.WithArity("R", 1))
	d := table.NewDatabase(s)
	d.MustAddRow("R", "⊥1")

	// A shared backing array with spare capacity, as a caller might build.
	backing := make([]value.Value, 1, 4)
	backing[0] = value.Int(7)
	opts := Options{ExtraConstants: backing[:1]}

	q1 := ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("#1"), ra.LitString("qconst1"))}
	if _, err := ByWorldsCWA(q1, d, opts); err != nil {
		t.Fatal(err)
	}
	// The caller's slice and its spare capacity must be untouched.
	if len(opts.ExtraConstants) != 1 || opts.ExtraConstants[0] != value.Int(7) {
		t.Fatalf("caller's ExtraConstants mutated: %v", opts.ExtraConstants)
	}
	probe := backing[:cap(backing)]
	for i := 1; i < len(probe); i++ {
		if probe[i] != (value.Value{}) {
			t.Fatalf("spare capacity of caller's slice written at %d: %v", i, probe[i])
		}
	}

	// Reusing the same Options for a second query must not see q1's
	// constants: the enumeration domain for q2 contains qconst2 but not
	// qconst1, so the certain answer for a σ[#1=qconst1] query is empty
	// while σ[#1=qconst2] keeps its counterexample world.
	q2 := ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("#1"), ra.LitString("qconst2"))}
	certain2, err := BoolCertainCWA(q2, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if certain2 {
		t.Fatal("q2 should not be certainly true")
	}
	if len(opts.ExtraConstants) != 1 || opts.ExtraConstants[0] != value.Int(7) {
		t.Fatalf("second call mutated ExtraConstants: %v", opts.ExtraConstants)
	}
}

// TestMaxWorldsTripsOnSaturatedCount pins the overflow guard end to end: a
// many-null instance whose world count saturates at math.MaxInt must still
// trip MaxWorlds instead of wrapping to a small (or negative) count.
func TestMaxWorldsTripsOnSaturatedCount(t *testing.T) {
	s := schema.MustNew(schema.WithArity("R", 2))
	d := table.NewDatabase(s)
	for i := 0; i < 48; i++ {
		d.MustAdd("R", table.NewTuple(value.Int(int64(i%24)), value.Null(uint64(i+1))))
	}
	opts := Options{MaxWorlds: math.MaxInt - 1}
	if _, err := ByWorldsCWA(ra.Base("R"), d, opts); err != ErrTooManyWorlds {
		t.Fatalf("ByWorldsCWA error = %v, want ErrTooManyWorlds", err)
	}
	if _, err := CertainObjectCWA(ra.Base("R"), d, opts); err != ErrTooManyWorlds {
		t.Fatalf("CertainObjectCWA error = %v, want ErrTooManyWorlds", err)
	}
	if _, err := BoolCertainCWA(ra.Base("R"), d, opts); err != ErrTooManyWorlds {
		t.Fatalf("BoolCertainCWA error = %v, want ErrTooManyWorlds", err)
	}
}
