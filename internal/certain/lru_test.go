package certain

import (
	"fmt"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
)

// TestLRUBound pins the plan caches' LRU behavior directly: the cache
// never exceeds its cap, evicts least-recently-used first, and get
// refreshes recency.
func TestLRUBound(t *testing.T) {
	var c lru[int]
	sc := &schema.Schema{}
	key := func(i int) planKey { return planKey{sc: sc, q: fmt.Sprintf("q%d", i)} }

	evicted := uint64(0)
	for i := 0; i < planCacheLimit+10; i++ {
		// Keep key(0) hot so it survives every eviction round.
		if _, ok := c.get(key(0)); !ok && i > 0 {
			t.Fatalf("hot entry evicted at %d", i)
		}
		evicted += c.add(key(i), i)
		if c.len() > planCacheLimit {
			t.Fatalf("cache grew to %d > cap %d", c.len(), planCacheLimit)
		}
	}
	if evicted != 10 {
		t.Fatalf("evicted = %d, want 10", evicted)
	}
	if _, ok := c.get(key(0)); !ok {
		t.Fatal("most-recently-used entry was evicted")
	}
	if _, ok := c.get(key(1)); ok {
		t.Fatal("least-recently-used entry survived past the cap")
	}
	// Replacing an existing key must not evict.
	if n := c.add(key(0), 99); n != 0 {
		t.Fatalf("replacement evicted %d entries", n)
	}
	if v, _ := c.get(key(0)); v != 99 {
		t.Fatalf("replacement not visible: %d", v)
	}
}

// TestEvaluatorEvictionStats pins that streaming more distinct queries
// than the cap surfaces evictions in the evaluator's stats while results
// stay correct.
func TestEvaluatorEvictionStats(t *testing.T) {
	sc := schema.MustNew(schema.NewRelation("R", "a", "b"))
	d := table.NewDatabase(sc)
	d.MustAddRow("R", "1", "2")
	ev := NewEvaluator(true)
	for i := 0; i < planCacheLimit+50; i++ {
		q := ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("a"), ra.LitInt(int64(i)))}
		if _, err := ev.Naive(q, d); err != nil {
			t.Fatal(err)
		}
	}
	st := ev.Stats()
	if st.OneShotEvictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	if st.OneShotMisses != uint64(planCacheLimit+50) {
		t.Fatalf("misses = %d, want %d", st.OneShotMisses, planCacheLimit+50)
	}
}
