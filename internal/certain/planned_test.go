package certain

import (
	"math/rand"
	"slices"
	"sort"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// diffSchema/diffDB build small random incomplete databases whose
// relations carry real attribute names, so every query below is
// well-formed.
func diffSchema() *schema.Schema {
	return schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "b", "c"),
		schema.NewRelation("T", "a", "b"),
	)
}

func diffDB(seed int64) *table.Database {
	rnd := rand.New(rand.NewSource(seed))
	d := table.NewDatabase(diffSchema())
	for _, name := range []string{"R", "S", "T"} {
		for i := 0; i < 4; i++ {
			t := make(table.Tuple, 2)
			for j := range t {
				if rnd.Intn(4) == 0 {
					t[j] = value.Null(uint64(rnd.Intn(2) + 1))
				} else {
					t[j] = value.Int(int64(rnd.Intn(3)))
				}
			}
			d.MustAdd(name, t)
		}
	}
	return d
}

// differentialQueries covers every operator class the planner handles:
// splittable plans (σπρ×⋈∪∩Δ), diff with invariant and variant right
// sides, and division (per-world fallback).
func differentialQueries() map[string]ra.Expr {
	ucq := ra.Project{
		Input: ra.Join{
			Left:  ra.Base("R"),
			Right: ra.Base("S"),
		},
		Attrs: []string{"a", "c"},
	}
	return map[string]ra.Expr{
		"base":      ra.Base("R"),
		"select":    ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("a"), ra.LitInt(1))},
		"ucq":       ucq,
		"union":     ra.Union{Left: ra.Base("R"), Right: ra.Base("T")},
		"intersect": ra.Intersect{Left: ra.Base("R"), Right: ra.Base("T")},
		"diff":      ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")},
		"proj-diff": ra.Project{Input: ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")}, Attrs: []string{"a"}},
		"delta":     ra.Delta{Attr1: "d1", Attr2: "d2"},
		"division": ra.Division{
			Left:  ra.Product{Left: ra.Base("R"), Right: ra.Rename{Input: ra.Base("S"), As: "S2", Attrs: []string{"x", "y"}}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S2", Attrs: []string{"x", "y"}},
		},
		"select-product-join": ra.Select{
			Input: ra.Product{Left: ra.Base("R"), Right: ra.Rename{Input: ra.Base("S"), As: "S3", Attrs: []string{"u", "v"}}},
			Pred:  ra.Eq(ra.Attr("b"), ra.Attr("u")),
		},
	}
}

func withPlanner(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := EnablePlanner(on)
	defer EnablePlanner(prev)
	f()
}

func relFingerprint(r *table.Relation) string {
	if r == nil {
		return "<nil>"
	}
	return r.CanonicalKey()
}

// TestPlannerDifferentialCertainPaths runs every certain-answer entry
// point with the planner on and off and requires bit-identical results on
// random incomplete databases — the planner acceptance check for the
// certain layer.
func TestPlannerDifferentialCertainPaths(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for name, q := range differentialQueries() {
		for _, seed := range seeds {
			for _, workers := range []int{0, 4} {
				d := diffDB(seed)
				opts := Options{ExtraFresh: 1, MaxWorlds: 1 << 20, Workers: workers}

				// The GLB construction behind CertainObjectCWA multiplies
				// answer relations, and its pairwise fold order determines
				// the intermediate product sizes: on moderate answer sets
				// an unlucky order exceeds the core budget and snowballs —
				// planner on or off alike, and with workers the order is
				// scheduling-dependent.  So the full certainO differential
				// runs serially on tiny-answer queries only; the parallel
				// paths are covered by the order-insensitive comparison of
				// the collected answer sets, which is the part the planner
				// rebuilt.
				checkCertainO := workers == 0 &&
					(name == "base" || name == "select" || name == "delta")

				type outcome struct {
					byWorlds, certainO, naive, owa string
					answers                        []string
					boolCertain                    bool
					errs                           [6]error
				}
				run := func() outcome {
					var o outcome
					r1, err := ByWorldsCWA(q, d, opts)
					o.errs[0] = err
					o.byWorlds = relFingerprint(r1)
					if checkCertainO {
						r2, err := CertainObjectCWA(q, d, opts)
						o.errs[1] = err
						o.certainO = relFingerprint(r2)
					}
					b, err := BoolCertainCWA(q, d, opts)
					o.errs[2] = err
					o.boolCertain = b
					r3, err := Naive(q, d)
					o.errs[3] = err
					o.naive = relFingerprint(r3)
					r4, err := ByWorldsOWA(q, d, opts)
					o.errs[4] = err
					o.owa = relFingerprint(r4)
					// The distinct per-world answer set (certainO's input).
					collectOpts := opts.withDefaults(d).withQueryConstants(q)
					answers, err := defaultEvaluator().collectAnswersCWA(q, d, collectOpts.domain(d), workers)
					o.errs[5] = err
					for _, a := range answers {
						o.answers = append(o.answers, relFingerprint(a))
					}
					sort.Strings(o.answers)
					return o
				}

				var on, off outcome
				withPlanner(t, true, func() { on = run() })
				withPlanner(t, false, func() { off = run() })

				for i := range on.errs {
					if (on.errs[i] == nil) != (off.errs[i] == nil) {
						t.Fatalf("%s seed=%d workers=%d: error mismatch at step %d: %v vs %v",
							name, seed, workers, i, on.errs[i], off.errs[i])
					}
				}
				if on.byWorlds != off.byWorlds {
					t.Errorf("%s seed=%d workers=%d: ByWorldsCWA differs", name, seed, workers)
				}
				if checkCertainO && on.certainO != off.certainO {
					// Serial enumeration is fully deterministic: require
					// bit-identical GLBs.
					t.Errorf("%s seed=%d workers=%d: CertainObjectCWA differs", name, seed, workers)
				}
				if on.boolCertain != off.boolCertain {
					t.Errorf("%s seed=%d workers=%d: BoolCertainCWA differs", name, seed, workers)
				}
				if on.naive != off.naive {
					t.Errorf("%s seed=%d workers=%d: Naive differs", name, seed, workers)
				}
				if on.owa != off.owa {
					t.Errorf("%s seed=%d workers=%d: ByWorldsOWA differs", name, seed, workers)
				}
				if !slices.Equal(on.answers, off.answers) {
					t.Errorf("%s seed=%d workers=%d: collected answer sets differ (%d vs %d answers)",
						name, seed, workers, len(on.answers), len(off.answers))
				}
			}
		}
	}
}

// TestPlannerDifferentialAfterMutation guards the world-plan cache: a call,
// a database mutation, and a second call must reflect the new contents
// (stale cached stable parts would be a soundness bug).
func TestPlannerDifferentialAfterMutation(t *testing.T) {
	d := diffDB(11)
	q := ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}}
	opts := Options{ExtraFresh: 1}

	if _, err := ByWorldsCWA(q, d, opts); err != nil {
		t.Fatal(err)
	}
	// Mutate a base relation in place and re-ask.
	d.MustAdd("R", table.NewTuple(value.Int(9), value.Int(9)))
	d.MustAdd("S", table.NewTuple(value.Int(9), value.Int(7)))

	var on, off *table.Relation
	var err error
	withPlanner(t, true, func() { on, err = ByWorldsCWA(q, d, opts) })
	if err != nil {
		t.Fatal(err)
	}
	withPlanner(t, false, func() { off, err = ByWorldsCWA(q, d, opts) })
	if err != nil {
		t.Fatal(err)
	}
	if !on.Equal(off) {
		t.Fatalf("stale plan after mutation:\nplanner: %s\noracle:  %s", on, off)
	}
	if !on.Contains(table.MustParseTuple("9", "7")) {
		t.Fatalf("answer misses the tuple introduced by the mutation: %s", on)
	}
}
