package col

import (
	"testing"

	"incdata/internal/table"
	"incdata/internal/value"
)

// TestChunkResetReuseAcrossArities is the pooled-reuse regression test
// for Reset: one chunk cycled through shrinking and growing arities (the
// lifecycle a sync.Pool imposes) must always present exactly arity
// columns, all empty and all-constant, with no state leaking from the
// wider life before it.
func TestChunkResetReuseAcrossArities(t *testing.T) {
	c := &Chunk{}
	for _, arity := range []int{3, 1, 4, 2, 4, 0, 3} {
		c.Reset(arity)
		if got := c.Arity(); got != arity {
			t.Fatalf("Arity = %d after Reset(%d)", got, arity)
		}
		if len(c.Const) != arity {
			t.Fatalf("len(Const) = %d after Reset(%d)", len(c.Const), arity)
		}
		if c.Rows != 0 {
			t.Fatalf("Rows = %d after Reset", c.Rows)
		}
		for j := 0; j < arity; j++ {
			if len(c.Cols[j]) != 0 {
				t.Fatalf("column %d not truncated after Reset(%d)", j, arity)
			}
			if !c.Const[j] {
				t.Fatalf("Const[%d] not reset after Reset(%d)", j, arity)
			}
		}
		// Dirty every column with a null so a buggy Reset would leak a
		// false Const or a stale row into the next cycle.
		tp := make(table.Tuple, arity)
		for j := range tp {
			tp[j] = value.Null(uint64(j + 1))
		}
		c.AppendTuple(tp)
	}
}

// TestChunkResetDivergedCaps pins the independent-caps guard: a manually
// assembled chunk whose Cols and Const capacities diverge must not slice
// Const out of range (or silently keep it short) when the arity grows
// back past the smaller capacity.
func TestChunkResetDivergedCaps(t *testing.T) {
	c := &Chunk{
		Cols:  make([][]value.Value, 4),
		Const: make([]bool, 2),
	}
	c.Reset(1)
	c.Reset(3) // within cap(Cols), beyond cap(Const)
	if len(c.Cols) != 3 || len(c.Const) != 3 {
		t.Fatalf("len(Cols) = %d, len(Const) = %d, want 3 and 3", len(c.Cols), len(c.Const))
	}
	c.AppendTuple(table.NewTuple(value.Int(1), value.Int(2), value.Null(1)))
	if c.Const[0] != true || c.Const[2] != false {
		t.Fatalf("sidecar wrong after append: %v", c.Const)
	}

	// And the mirror case: Const wide, Cols narrow.
	c2 := &Chunk{
		Cols:  make([][]value.Value, 2),
		Const: make([]bool, 4),
	}
	c2.Reset(3)
	if len(c2.Cols) != 3 || len(c2.Const) != 3 {
		t.Fatalf("len(Cols) = %d, len(Const) = %d, want 3 and 3", len(c2.Cols), len(c2.Const))
	}
	c2.AppendTuple(table.NewTuple(value.Int(1), value.Int(2), value.Int(3)))
	if c2.Rows != 1 {
		t.Fatalf("Rows = %d", c2.Rows)
	}
}

// TestCodedResetReuseAcrossArities mirrors the pooled-reuse regression
// for the coded twin, including the diverged-caps guard.
func TestCodedResetReuseAcrossArities(t *testing.T) {
	nullCode := func(id uint64) uint64 {
		c, ok := value.EncodeDirect(value.Null(id))
		if !ok {
			t.Fatalf("null %d must encode directly", id)
		}
		return c
	}
	c := &Coded{}
	for _, arity := range []int{3, 1, 4, 2, 4, 0, 3} {
		c.Reset(arity)
		if got := c.Arity(); got != arity {
			t.Fatalf("Arity = %d after Reset(%d)", got, arity)
		}
		if len(c.Const) != arity || c.Rows != 0 {
			t.Fatalf("len(Const) = %d, Rows = %d after Reset(%d)", len(c.Const), c.Rows, arity)
		}
		for j := 0; j < arity; j++ {
			if len(c.Cols[j]) != 0 || !c.Const[j] {
				t.Fatalf("column %d dirty after Reset(%d)", j, arity)
			}
			c.Append(j, nullCode(uint64(j+1)))
		}
		if arity > 0 {
			c.EndRow()
			if c.AllConst() {
				t.Fatal("null codes must clear the sidecar")
			}
		}
	}

	dv := &Coded{
		Cols:  make([][]uint64, 4),
		Const: make([]bool, 2),
	}
	dv.Reset(3)
	if len(dv.Cols) != 3 || len(dv.Const) != 3 {
		t.Fatalf("diverged caps: len(Cols) = %d, len(Const) = %d, want 3 and 3", len(dv.Cols), len(dv.Const))
	}
}
