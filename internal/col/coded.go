package col

// Coded is the monomorphic twin of Chunk: the same column-major batch
// layout, but each column is a []uint64 of value codes (see
// internal/value code space and internal/table.Dict) instead of a
// []value.Value.  Kernels over Coded chunks are branch-free u64 loops —
// no kind dispatch, no string pointers, nothing for the GC to trace.
//
// The Const sidecar has the same meaning as Chunk's: column j is true
// while no null code has been appended.  Null detection on codes is a
// pure tag test (value.CodeIsNull), so the sidecar and CompleteSel stay
// exact without consulting any dictionary.
//
// Coded chunks emitted by scans may be zero-copy views into a cached
// table.Encoding; consumers must treat Cols as read-only and must not
// retain them past the emit callback, mirroring the Chunk contract.

import "incdata/internal/value"

// Coded is a column-major batch of code tuples: Cols[j][i] is the code
// of attribute j of row i.  All columns have length Rows.  The zero
// Coded is empty and ready for Reset.
type Coded struct {
	// Cols holds one code vector per attribute.
	Cols [][]uint64
	// Const is the null sidecar: Const[j] is true while column j contains
	// no null code.
	Const []bool
	// Rows is the number of rows in the chunk.
	Rows int
}

// NewCoded returns a coded chunk with the given arity, each column
// pre-allocated to the given capacity.
func NewCoded(arity, capacity int) *Coded {
	c := &Coded{}
	c.Reset(arity)
	for j := range c.Cols {
		c.Cols[j] = make([]uint64, 0, capacity)
	}
	return c
}

// Reset truncates the chunk to zero rows with the given arity, keeping
// column capacity for reuse.  The sidecar resets to all-constant.
func (c *Coded) Reset(arity int) {
	if cap(c.Cols) < arity || cap(c.Const) < arity {
		c.Cols = make([][]uint64, arity)
		c.Const = make([]bool, arity)
	}
	c.Cols = c.Cols[:arity]
	c.Const = c.Const[:arity]
	for j := range c.Cols {
		c.Cols[j] = c.Cols[j][:0]
		c.Const[j] = true
	}
	c.Rows = 0
}

// Arity returns the number of columns.
func (c *Coded) Arity() int { return len(c.Cols) }

// Append appends one code to column j, maintaining the sidecar.  Callers
// append one code to every column, then call EndRow.
func (c *Coded) Append(j int, code uint64) {
	c.Cols[j] = append(c.Cols[j], code)
	if c.Const[j] && value.CodeIsNull(code) {
		c.Const[j] = false
	}
}

// EndRow accounts for one fully appended row.
func (c *Coded) EndRow() { c.Rows++ }

// AllConst reports whether every column of the chunk is all-constant.
func (c *Coded) AllConst() bool {
	for _, cc := range c.Const {
		if !cc {
			return false
		}
	}
	return true
}

// ConstAt reports whether every column at the given positions is
// all-constant (nil positions means all columns, like AllConst).
func (c *Coded) ConstAt(positions []int) bool {
	if positions == nil {
		return c.AllConst()
	}
	for _, p := range positions {
		if !c.Const[p] {
			return false
		}
	}
	return true
}

// CompleteSel narrows sel (nil = all rows) to the rows with no null code
// in any column, appending the surviving row indexes to dst — the coded
// form of Chunk.CompleteSel, with the per-value IsNull call replaced by
// the tag test.  All-constant columns are skipped via the sidecar; when
// every column is all-constant the input selection is returned unchanged
// without touching dst.
func (c *Coded) CompleteSel(sel []int32, dst []int32) ([]int32, bool) {
	if c.AllConst() {
		return sel, false
	}
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < c.Rows; i++ {
			if c.rowComplete(i) {
				dst = append(dst, int32(i))
			}
		}
		return dst, true
	}
	for _, i := range sel {
		if c.rowComplete(int(i)) {
			dst = append(dst, i)
		}
	}
	return dst, true
}

// rowComplete reports whether row i has no null code, skipping
// all-constant columns.
func (c *Coded) rowComplete(i int) bool {
	for j, col := range c.Cols {
		if c.Const[j] {
			continue
		}
		if value.CodeIsNull(col[i]) {
			return false
		}
	}
	return true
}
