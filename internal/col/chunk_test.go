package col

import (
	"bytes"
	"testing"

	"incdata/internal/table"
	"incdata/internal/value"
)

func sampleTuples() []table.Tuple {
	return []table.Tuple{
		table.NewTuple(value.Int(1), value.String("x")),
		table.NewTuple(value.Int(2), value.Null(7)),
		table.NewTuple(value.Null(3), value.String("y")),
		table.NewTuple(value.Int(4), value.String("z")),
	}
}

// TestRoundTrip pins the row bridge: FromTuples then Tuple/AppendTuples
// reproduces the input exactly, with fresh (non-aliasing) tuples.
func TestRoundTrip(t *testing.T) {
	ts := sampleTuples()
	c := New(2, 4)
	c.FromTuples(ts, 2)
	if c.Rows != len(ts) || c.Arity() != 2 {
		t.Fatalf("Rows=%d Arity=%d, want %d,2", c.Rows, c.Arity(), len(ts))
	}
	for i, want := range ts {
		got := c.Tuple(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Tuple(%d) = %v, want %v", i, got, want)
			}
		}
	}
	gathered := c.AppendTuples(nil, nil)
	if len(gathered) != len(ts) {
		t.Fatalf("AppendTuples gathered %d rows, want %d", len(gathered), len(ts))
	}
	sel := []int32{1, 3}
	some := c.AppendTuples(nil, sel)
	if len(some) != 2 || some[0][0] != ts[1][0] || some[1][0] != ts[3][0] {
		t.Fatalf("selected gather wrong: %v", some)
	}
	// Gathered tuples must not alias chunk storage.
	c.Reset(2)
	c.AppendTuple(table.NewTuple(value.Int(99), value.Int(99)))
	if gathered[0][0] != ts[0][0] {
		t.Fatalf("gathered tuple aliases chunk storage")
	}
}

// TestSidecar pins the all-constant sidecar semantics.
func TestSidecar(t *testing.T) {
	c := New(2, 4)
	c.AppendTuple(table.NewTuple(value.Int(1), value.String("x")))
	if !c.AllConst() || !c.ConstAt([]int{0, 1}) {
		t.Fatalf("constant-only chunk must be all-constant")
	}
	c.AppendTuple(table.NewTuple(value.Null(1), value.String("y")))
	if c.AllConst() {
		t.Fatalf("chunk with a null must not be all-constant")
	}
	if c.Const[0] || !c.Const[1] {
		t.Fatalf("sidecar wrong: Const=%v, want [false true]", c.Const)
	}
	if c.ConstAt([]int{0}) || !c.ConstAt([]int{1}) {
		t.Fatalf("ConstAt disagrees with sidecar")
	}
	if c.ConstAt(nil) {
		t.Fatalf("ConstAt(nil) must equal AllConst")
	}
	c.Reset(2)
	if !c.AllConst() || c.Rows != 0 {
		t.Fatalf("Reset must restore the all-constant sidecar")
	}
}

// TestCompleteSel pins the vectorized completeness scan against the
// per-tuple IsComplete oracle, including the all-constant short-circuit.
func TestCompleteSel(t *testing.T) {
	ts := sampleTuples()
	c := New(2, 4)
	c.FromTuples(ts, 2)
	got, used := c.CompleteSel(nil, nil)
	if !used {
		t.Fatalf("chunk with nulls must scan")
	}
	var want []int32
	for i, tp := range ts {
		if tp.IsComplete() {
			want = append(want, int32(i))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("CompleteSel = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CompleteSel = %v, want %v", got, want)
		}
	}

	// Restricted input selection narrows within it.
	sel := []int32{0, 1, 2}
	got, _ = c.CompleteSel(sel, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("CompleteSel(%v) = %v, want [0]", sel, got)
	}

	// All-constant chunks return the input selection untouched.
	c.Reset(2)
	c.AppendTuple(table.NewTuple(value.Int(1), value.Int(2)))
	in := []int32{0}
	got, used = c.CompleteSel(in, nil)
	if used || len(got) != 1 || got[0] != 0 {
		t.Fatalf("all-constant CompleteSel must pass the selection through, got %v used=%v", got, used)
	}
}

// TestRowKeys pins the column-wise key encodings identical to the
// per-tuple ones the hash structures are built with.
func TestRowKeys(t *testing.T) {
	ts := sampleTuples()
	c := New(2, 4)
	c.FromTuples(ts, 2)
	for i, tp := range ts {
		if got, want := c.AppendRowKey(nil, i), tp.AppendKey(nil); !bytes.Equal(got, want) {
			t.Fatalf("AppendRowKey(%d) = %x, want %x", i, got, want)
		}
		pos := []int{1, 0}
		want := tp[1].AppendKey(nil)
		want = tp[0].AppendKey(want)
		if got := c.AppendPosKey(nil, pos, i); !bytes.Equal(got, want) {
			t.Fatalf("AppendPosKey(%d) = %x, want %x", i, got, want)
		}
	}
}
