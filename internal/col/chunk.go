// Package col provides the columnar chunk layout of the vectorized
// execution path: a Chunk re-encodes a batch of tuples column-wise, one
// contiguous value slice per attribute, so operator kernels
// (internal/plan) run as tight per-column loops instead of per-row
// closure calls.
//
// A Chunk carries a per-column "all constants" sidecar (Const): column j
// is marked true while no null has been appended to it.  Kernels use the
// sidecar to skip null handling wholesale — certain-answer
// materialization skips the per-row completeness scan over all-constant
// columns, and the hash-join probe takes its all-constant fast path when
// both the probe columns and the build side are null-free.
//
// Chunks convert to and from []table.Tuple at operator boundaries that
// still need rows (FromTuples, AppendTuples): values are copied in both
// directions, so a tuple gathered out of a chunk never aliases chunk
// storage and stays valid after the chunk is reset or recycled.
package col

import (
	"incdata/internal/table"
	"incdata/internal/value"
)

// Chunk is a column-major batch of tuples: Cols[j][i] is attribute j of
// row i.  All columns have length Rows.  The zero Chunk is empty and
// ready for Reset.
type Chunk struct {
	// Cols holds one value vector per attribute.
	Cols [][]value.Value
	// Const is the null sidecar: Const[j] is true while column j contains
	// no null (every value is a constant).
	Const []bool
	// Rows is the number of rows in the chunk.
	Rows int
}

// New returns a chunk with the given arity, each column pre-allocated to
// the given capacity.
func New(arity, capacity int) *Chunk {
	c := &Chunk{}
	c.Reset(arity)
	for j := range c.Cols {
		c.Cols[j] = make([]value.Value, 0, capacity)
	}
	return c
}

// Reset truncates the chunk to zero rows with the given arity, keeping
// column capacity for reuse.  The sidecar resets to all-constant.  Both
// backing arrays are checked independently: Cols and Const are always
// allocated together, but guarding each keeps a pooled chunk whose
// slices ever diverge (e.g. a manually assembled Chunk) from slicing
// Const out of range when the arity grows back.
func (c *Chunk) Reset(arity int) {
	if cap(c.Cols) < arity || cap(c.Const) < arity {
		c.Cols = make([][]value.Value, arity)
		c.Const = make([]bool, arity)
	}
	c.Cols = c.Cols[:arity]
	c.Const = c.Const[:arity]
	for j := range c.Cols {
		c.Cols[j] = c.Cols[j][:0]
		c.Const[j] = true
	}
	c.Rows = 0
}

// Arity returns the number of columns.
func (c *Chunk) Arity() int { return len(c.Cols) }

// AppendTuple appends one row, maintaining the sidecar.
func (c *Chunk) AppendTuple(t table.Tuple) {
	for j, v := range t {
		c.Cols[j] = append(c.Cols[j], v)
		if c.Const[j] && v.IsNull() {
			c.Const[j] = false
		}
	}
	c.Rows++
}

// FromTuples resets the chunk and fills it with the given rows — the row
// bridge used by operators without a native columnar form.
func (c *Chunk) FromTuples(ts []table.Tuple, arity int) {
	c.Reset(arity)
	for _, t := range ts {
		c.AppendTuple(t)
	}
}

// Tuple materializes row i as a freshly allocated tuple; it never aliases
// chunk storage.
func (c *Chunk) Tuple(i int) table.Tuple {
	t := make(table.Tuple, len(c.Cols))
	for j, col := range c.Cols {
		t[j] = col[i]
	}
	return t
}

// AppendTuples gathers the selected rows (all rows when sel is nil) into
// dst as freshly allocated tuples and returns the extended slice.
func (c *Chunk) AppendTuples(dst []table.Tuple, sel []int32) []table.Tuple {
	if sel == nil {
		for i := 0; i < c.Rows; i++ {
			dst = append(dst, c.Tuple(i))
		}
		return dst
	}
	for _, i := range sel {
		dst = append(dst, c.Tuple(int(i)))
	}
	return dst
}

// AppendRowKey appends the binary key of row i (all columns, in order) to
// dst — identical to table.Tuple.AppendKey on the gathered row.
func (c *Chunk) AppendRowKey(dst []byte, i int) []byte {
	for _, col := range c.Cols {
		dst = col[i].AppendKey(dst)
	}
	return dst
}

// AppendPosKey appends the binary key of row i restricted to the given
// column positions — the columnar counterpart of the probe-side key
// encoding of hash joins.
func (c *Chunk) AppendPosKey(dst []byte, positions []int, i int) []byte {
	for _, p := range positions {
		dst = c.Cols[p][i].AppendKey(dst)
	}
	return dst
}

// AllConst reports whether every column of the chunk is all-constant.
func (c *Chunk) AllConst() bool {
	for _, cc := range c.Const {
		if !cc {
			return false
		}
	}
	return true
}

// ConstAt reports whether every column at the given positions is
// all-constant (nil positions means all columns, like AllConst).
func (c *Chunk) ConstAt(positions []int) bool {
	if positions == nil {
		return c.AllConst()
	}
	for _, p := range positions {
		if !c.Const[p] {
			return false
		}
	}
	return true
}

// CompleteSel narrows sel (nil = all rows) to the rows with no null in
// any column, appending the surviving row indexes to dst — the vectorized
// form of the per-tuple IsComplete scan of certain-answer extraction.
// All-constant columns are skipped entirely via the sidecar; when every
// column is all-constant the input selection is returned unchanged
// without touching dst.
func (c *Chunk) CompleteSel(sel []int32, dst []int32) ([]int32, bool) {
	if c.AllConst() {
		return sel, false
	}
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < c.Rows; i++ {
			if c.rowComplete(i) {
				dst = append(dst, int32(i))
			}
		}
		return dst, true
	}
	for _, i := range sel {
		if c.rowComplete(int(i)) {
			dst = append(dst, i)
		}
	}
	return dst, true
}

// rowComplete reports whether row i has no null, skipping all-constant
// columns.
func (c *Chunk) rowComplete(i int) bool {
	for j, col := range c.Cols {
		if c.Const[j] {
			continue
		}
		if col[i].IsNull() {
			return false
		}
	}
	return true
}
