package engine

import (
	"fmt"
	"runtime"
	"sync"

	"incdata/internal/ra"
	"incdata/internal/sqlx"
	"incdata/internal/table"
)

// Request is one query of a Serve batch: either a relational-algebra
// expression evaluated under Opts, or a SQL-semantics query (when SQL is
// non-nil, it wins and Opts is ignored except for the planner setting,
// which SQL evaluation does not use).
type Request struct {
	Query ra.Expr
	SQL   *sqlx.Query
	Opts  Options
}

// Response is the outcome of one request.
type Response struct {
	Rel *table.Relation
	Err error
}

// Serve evaluates a batch of requests against this snapshot on a pool of
// workers and returns the responses in request order.  workers <= 0 uses
// GOMAXPROCS.  Every request sees the same database state — the snapshot's
// — regardless of concurrent writers.
func (s *Snapshot) Serve(reqs []Request, workers int) []Response {
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers == 1 {
		for i := range reqs {
			out[i] = s.serveOne(reqs[i])
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = s.serveOne(reqs[i])
			}
		}()
	}
	for i := range reqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

func (s *Snapshot) serveOne(req Request) Response {
	switch {
	case req.SQL != nil:
		rel, err := s.SQL(*req.SQL)
		return Response{Rel: rel, Err: err}
	case req.Query != nil:
		rel, err := s.Eval(req.Query, req.Opts)
		return Response{Rel: rel, Err: err}
	default:
		return Response{Err: fmt.Errorf("engine: request has neither Query nor SQL")}
	}
}

// Serve takes a snapshot and evaluates the batch against it; see
// Snapshot.Serve.  Writers may keep updating the engine while the batch
// runs — the batch is evaluated against a single consistent state.
func (e *Engine) Serve(reqs []Request, workers int) []Response {
	return e.Snapshot().Serve(reqs, workers)
}
