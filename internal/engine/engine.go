// Package engine is the unified evaluation facade of the library: one
// Engine per logical database that owns mode dispatch (naïve / certain /
// world-enumeration ground truth / certainO, with the query planner on or
// off), the plan caches and plan-session pools that used to be buried in
// package certain, and snapshot isolation over the copy-on-write relations
// of package table.
//
// The CLIs (cmd/incq, cmd/incbench), the experiment harness and the
// examples all evaluate through this facade; packages certain, ra and sqlx
// remain the underlying machinery and the reference oracle for
// differential tests, but are no longer entry points.
//
// # Concurrency
//
// All writes go through Update, which holds the engine lock.  Snapshot
// returns an immutable view sharing tuple storage copy-on-write with the
// live database: any number of goroutines may evaluate queries against
// snapshots while writers keep mutating, and each snapshot observes
// exactly the state at the time it was taken.  Eval/EvalBool/SQL on the
// Engine itself are shorthand for evaluating on the current snapshot.
//
// Plan caches are validated by content stamps (table.Stamp), so a cached
// world plan — including its stable subplan results and hash indexes — is
// reused across snapshots as long as the relations the query reads are
// unchanged, even when writers mutated other relations in between.
package engine

import (
	"errors"
	"fmt"
	"sync"

	"incdata/internal/certain"
	"incdata/internal/inc"
	"incdata/internal/ra"
	"incdata/internal/sqlx"
	"incdata/internal/store"
	"incdata/internal/table"
	"incdata/internal/version"
)

// Engine owns one logical database and everything needed to evaluate
// queries against it concurrently: the planner and oracle evaluators (each
// with its own plan caches and session pools), the current snapshot, and
// the registered maintained views (see views.go).
type Engine struct {
	mu   sync.Mutex
	db   *table.Database
	snap *table.Database // cached snapshot of db; nil after a write
	// lastSnap is the most recent snapshot ever taken, kept across writes:
	// rebuilding the snapshot after a commit reuses its headers for
	// relations the commit didn't touch (table.SnapshotReusing), so their
	// derived caches — indexes, partitionings, coded sidecars — survive.
	lastSnap *table.Database

	planned *certain.Evaluator
	oracle  *certain.Evaluator

	views    map[string]*inc.View // maintained views, refreshed inside Update
	viewRegs map[string]viewReg   // registration info, to rebuild views on Checkout/Merge

	// Version history (see history.go): nil until EnableHistory.  The
	// history has its own lock, so AsOf readers reconstruct historical
	// states without holding the engine lock; branch and pending are
	// engine-lock state.
	hist    *version.History
	branch  string           // checked-out branch
	pending *table.ChangeSet // net uncommitted changes since the last commit

	// Durable store (see durable.go): nil unless Persist/Open attached
	// one.  While attached, commits append log records and checkpoint
	// manifests under the engine lock.
	st              *store.Store
	checkpointEvery int // durable checkpoint interval (mirrors the history's)
}

// New creates an engine over db.  The engine adopts the database: all
// subsequent writes must go through Update, and readers must use Snapshot
// (or the Eval/EvalBool/SQL shorthands) — mutating db directly while the
// engine is in use breaks snapshot isolation.
func New(db *table.Database) *Engine {
	return &Engine{
		db:      db,
		planned: certain.NewEvaluator(true),
		oracle:  certain.NewEvaluator(false),
	}
}

// Update runs fn with exclusive access to the live database.  Concurrent
// readers holding snapshots are unaffected: the first write to each
// relation copies its tuple map, never the snapshots' view of it.  The
// cached current snapshot is invalidated whether or not fn fails, since a
// failing fn may have partially mutated the database.
//
// While maintained views are registered, the update's net tuple deltas are
// captured (table.Tracker) and every view is refreshed before Update
// returns — incrementally where the view's delta network allows, by
// re-evaluation otherwise, and not at all when the delta misses every
// relation the view reads.  Views are refreshed even when fn fails or
// panics, since fn may have committed partial mutations the views must
// track; a panic is re-raised after the tracker is detached and the views
// are consistent again.  While version history is enabled (EnableHistory)
// the same captured deltas also accumulate as the pending change set the
// next Commit turns into a commit.
func (e *Engine) Update(fn func(db *table.Database) error) (err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.snap = nil
	if len(e.views) == 0 && e.hist == nil {
		return fn(e.db)
	}
	tr := e.db.Track()
	defer func() {
		cs := tr.Stop()
		if e.hist != nil {
			e.pending.Compose(cs)
		}
		for _, name := range e.viewNamesLocked() {
			if verr := e.views[name].Apply(cs, e.db); verr != nil {
				err = errors.Join(err, verr)
			}
		}
	}()
	return fn(e.db)
}

// Snapshot returns a consistent, immutable view of the database as of now.
// Snapshots are cheap (O(#relations), sharing tuple storage); between
// writes, repeated calls return views of the same underlying storage, so
// plan caches keep validating against it.
func (e *Engine) Snapshot() *Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.snap == nil {
		e.snap = e.db.SnapshotReusing(e.lastSnap)
		e.lastSnap = e.snap
	}
	return &Snapshot{eng: e, db: e.snap}
}

// Stats reports plan-cache traffic for both evaluation paths plus the
// refresh counters of every registered view, all captured in one critical
// section so the report is a coherent point-in-time snapshot even while
// writers commit and views refresh concurrently.  (A serving STATS
// endpoint calls this on every request; assembling the same report from
// Views/ViewStats would take the engine lock once per view and could
// interleave with a concurrent Unregister.)
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{Planned: e.planned.Stats(), Oracle: e.oracle.Stats()}
	if len(e.views) > 0 {
		st.Views = make(map[string]inc.Stats, len(e.views))
		for name, v := range e.views {
			st.Views[name] = v.Stats()
		}
	}
	for _, name := range e.db.RelationNames() {
		if es := e.db.Relation(name).EncodingStats(); es.Active() {
			if st.Encoding == nil {
				st.Encoding = map[string]table.EncodingStats{}
			}
			st.Encoding[name] = es
		}
	}
	return st
}

// Stats is the engine's cache-statistics report.
type Stats struct {
	// Planned counts the planner path's caches; Oracle is the
	// naïve-evaluation path (whose caches stay empty — it compiles no
	// plans — but is reported for symmetry).
	Planned certain.CacheStats
	Oracle  certain.CacheStats
	// Views maps each registered view name to its refresh counters, as of
	// the same instant the cache counters were read; nil when no views are
	// registered.
	Views map[string]inc.Stats
	// Encoding maps each live relation with coded-sidecar history to its
	// churn-guard state: sidecars built, Encoding requests declined, and
	// whether the guard is currently declining (the relation mutates
	// faster than the coded tier pays off).  Relations with no coded
	// activity are omitted; nil when none have any.
	Encoding map[string]table.EncodingStats
}

// evaluator picks the evaluator for the options' planner setting.
func (e *Engine) evaluator(o Options) *certain.Evaluator {
	if o.Planner == PlannerOff {
		return e.oracle
	}
	return e.planned
}

// Eval evaluates q on the current snapshot; see Snapshot.Eval.
func (e *Engine) Eval(q ra.Expr, opts Options) (*table.Relation, error) {
	return e.Snapshot().Eval(q, opts)
}

// EvalBool evaluates a Boolean query on the current snapshot; see
// Snapshot.EvalBool.
func (e *Engine) EvalBool(q ra.Expr, opts Options) (bool, error) {
	return e.Snapshot().EvalBool(q, opts)
}

// SQL evaluates a SQL-semantics query on the current snapshot; see
// Snapshot.SQL.
func (e *Engine) SQL(q sqlx.Query) (*table.Relation, error) {
	return e.Snapshot().SQL(q)
}

// Compare runs ModeCertain against the ModeCertainCWA ground truth on the
// current snapshot; see Snapshot.Compare.
func (e *Engine) Compare(q ra.Expr, opts Options) (certain.Comparison, error) {
	return e.Snapshot().Compare(q, opts)
}

// Snapshot is an immutable view of an engine's database.  Its methods may
// be called from any number of goroutines, concurrently with writers
// updating the engine.
type Snapshot struct {
	eng *Engine
	db  *table.Database
}

// Database returns the snapshot's view of the database for inspection
// (printing, schema access).  It must not be mutated.
func (s *Snapshot) Database() *table.Database { return s.db }

// Eval evaluates the relational-algebra query under the options' mode and
// returns the answer relation.
func (s *Snapshot) Eval(q ra.Expr, opts Options) (*table.Relation, error) {
	return evalMode(s.eng.evaluator(opts), q, s.db, opts)
}

// evalMode dispatches one evaluation on an explicit evaluator and database
// state.  It is shared by Snapshot.Eval and the recompute path of
// maintained views (which runs under the engine lock and therefore must
// not go back through Snapshot).
func evalMode(ev *certain.Evaluator, q ra.Expr, db *table.Database, opts Options) (*table.Relation, error) {
	switch opts.Mode {
	case ModeCertain:
		return ev.NaiveWith(q, db, opts.evalConfig())
	case ModeNaive:
		return ev.NaiveRawWith(q, db, opts.evalConfig())
	case ModeCertainCWA:
		return ev.ByWorldsCWA(q, db, opts.certainOptions())
	case ModeCertainOWA:
		return ev.ByWorldsOWA(q, db, opts.certainOptions())
	case ModeCertainObject:
		return ev.CertainObjectCWA(q, db, opts.certainOptions())
	default:
		return nil, fmt.Errorf("engine: unknown mode %v", opts.Mode)
	}
}

// EvalBool computes the certain answer of a Boolean query under CWA world
// enumeration: true iff the query is nonempty in every world.  The mode in
// opts is ignored.
func (s *Snapshot) EvalBool(q ra.Expr, opts Options) (bool, error) {
	return s.eng.evaluator(opts).BoolCertainCWA(q, s.db, opts.certainOptions())
}

// SQL evaluates a SELECT-FROM-WHERE query under SQL's three-valued-logic
// semantics (the "practice" baseline the paper critiques).
func (s *Snapshot) SQL(q sqlx.Query) (*table.Relation, error) {
	return sqlx.Eval(q, s.db)
}

// Compare checks the ModeCertain answer against the ModeCertainCWA ground
// truth on this snapshot, reporting missing and spurious tuples.
func (s *Snapshot) Compare(q ra.Expr, opts Options) (certain.Comparison, error) {
	return s.eng.evaluator(opts).Compare(q, s.db, opts.certainOptions())
}
