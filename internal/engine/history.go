package engine

// Version history on the engine facade: EnableHistory attaches an
// internal/version commit DAG to the engine, after which every Update's
// captured deltas accumulate as the pending change set, Commit turns the
// pending changes into a commit on the checked-out branch, and the
// history operations — Branch, Checkout, AsOf, DiffVersions, Merge, Log —
// operate on the DAG.  AsOf hands back a regular Snapshot, so certain-
// answer queries in every mode, planner on or off, run against historical
// commits through exactly the evaluation paths live snapshots use,
// including the stamp-keyed plan caches (repeated AsOf of one commit
// returns the identical reconstructed database, so its relation stamps
// keep validating cache entries).  Registered views always track the live
// head: Checkout and Merge rebuild them against the new head state.

import (
	"fmt"

	"incdata/internal/store"
	"incdata/internal/table"
	"incdata/internal/version"
)

// HistoryOptions configures EnableHistory.
type HistoryOptions struct {
	// Branch names the initial branch; "" means "main".
	Branch string
	// Message is the root commit's message; "" means "init".
	Message string
	// CheckpointEvery materializes a full checkpoint every K commits so
	// AsOf replays at most K deltas; 0 means
	// version.DefaultCheckpointEvery, negative checkpoints only the root.
	CheckpointEvery int
}

// EnableHistory attaches a commit history to the engine, rooted at the
// database's current state, and returns the root commit id.  From then on
// every Update captures its net deltas into the pending change set; Commit
// appends them to the checked-out branch.  Enabling twice is an error.
func (e *Engine) EnableHistory(opts HistoryOptions) (version.CommitID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.hist != nil {
		return "", fmt.Errorf("engine: history already enabled")
	}
	if opts.Branch == "" {
		opts.Branch = "main"
	}
	if opts.Message == "" {
		opts.Message = "init"
	}
	hist, root := version.New(e.db, opts.Branch, opts.Message, version.Options{CheckpointEvery: opts.CheckpointEvery})
	e.hist = hist
	e.branch = opts.Branch
	e.pending = table.NewChangeSet()
	return root, nil
}

// HistoryEnabled reports whether EnableHistory has been called.
func (e *Engine) HistoryEnabled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hist != nil
}

// historyLocked returns the attached history or an error; the caller
// holds e.mu.
func (e *Engine) historyLocked() (*version.History, error) {
	if e.hist == nil {
		return nil, fmt.Errorf("engine: history not enabled")
	}
	return e.hist, nil
}

// Commit appends the pending change set (the net deltas of every Update
// since the last commit) as a commit on the checked-out branch and returns
// its id.  With nothing pending it returns the current head unchanged —
// the history stays free of empty commits.
func (e *Engine) Commit(message string) (version.CommitID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	hist, err := e.historyLocked()
	if err != nil {
		return "", err
	}
	if e.pending.Empty() {
		return hist.Head(e.branch)
	}
	id, err := hist.Commit(e.branch, message, e.pending, e.db)
	if err != nil {
		return "", err
	}
	e.pending = table.NewChangeSet()
	return id, persistErr(id, e.persistCommitLocked(id))
}

// CommitWithDeltas is Commit plus, in the same critical section, the
// drained answer deltas of every registered view (inc.View.TakeDelta):
// the net change each view's maintained answer underwent since the
// previous drain.  Because the drain happens under the engine lock that
// also serializes Update, the returned deltas cover exactly the updates
// bundled into the returned commit — no concurrent writer can slip an
// update between the commit and the drain.  This is the push signal of
// the network server's SUBSCRIBE streams: applying each commit's deltas
// in commit order to the answer at subscription time reproduces the
// maintained answer at every commit.  Views whose answers did not change
// are omitted from the map.
func (e *Engine) CommitWithDeltas(message string) (version.CommitID, map[string]*table.Delta, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	hist, err := e.historyLocked()
	if err != nil {
		return "", nil, err
	}
	id, err := hist.Head(e.branch)
	if !e.pending.Empty() {
		id, err = hist.Commit(e.branch, message, e.pending, e.db)
		if err == nil {
			e.pending = table.NewChangeSet()
			err = persistErr(id, e.persistCommitLocked(id))
		}
	}
	if err != nil {
		return "", nil, err
	}
	var deltas map[string]*table.Delta
	for _, name := range e.viewNamesLocked() {
		d := e.views[name].TakeDelta()
		if d.Empty() {
			continue
		}
		if deltas == nil {
			deltas = map[string]*table.Delta{}
		}
		deltas[name] = d
	}
	return id, deltas, nil
}

// Head returns the checked-out branch name and its head commit.
func (e *Engine) Head() (string, version.CommitID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	hist, err := e.historyLocked()
	if err != nil {
		return "", "", err
	}
	id, err := hist.Head(e.branch)
	return e.branch, id, err
}

// Branch creates a new branch pointing at the current head.  It does not
// check the branch out.
func (e *Engine) Branch(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	hist, err := e.historyLocked()
	if err != nil {
		return err
	}
	head, err := hist.Head(e.branch)
	if err != nil {
		return err
	}
	if err := hist.Branch(name, head); err != nil {
		return err
	}
	if e.st != nil {
		return e.st.Append(&store.Record{Type: store.RecBranch, Branch: name, ID: string(head)})
	}
	return nil
}

// Branches returns the branch refs.
func (e *Engine) Branches() (map[string]version.CommitID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	hist, err := e.historyLocked()
	if err != nil {
		return nil, err
	}
	return hist.Branches(), nil
}

// Checkout switches the live database to another branch's head state.
// Uncommitted changes (a non-empty pending change set) block the switch —
// commit first.  Registered views are rebuilt against the new head (their
// refresh counters restart); concurrent readers keep whatever snapshots
// they hold.
func (e *Engine) Checkout(branch string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	hist, err := e.historyLocked()
	if err != nil {
		return err
	}
	if !e.pending.Empty() {
		return fmt.Errorf("engine: checkout with uncommitted changes (commit first)")
	}
	head, err := hist.Head(branch)
	if err != nil {
		return err
	}
	state, err := hist.AsOf(head)
	if err != nil {
		return err
	}
	e.db = state.Clone()
	e.snap = nil
	e.branch = branch
	if e.st != nil {
		if err := e.st.Append(&store.Record{Type: store.RecHead, Branch: branch}); err != nil {
			return err
		}
	}
	return e.rebuildViewsLocked()
}

// AsOf returns a read-only snapshot of the database state at a commit.
// All evaluation modes, planner on or off, work exactly as on a live
// snapshot; repeated calls for one commit share the reconstructed state,
// so plan-cache entries validated by its relation stamps are reused.
func (e *Engine) AsOf(id version.CommitID) (*Snapshot, error) {
	e.mu.Lock()
	hist, err := e.historyLocked()
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// Reconstruction runs under the history's own lock: AsOf readers do
	// not block engine writers (and vice versa) beyond the replay itself.
	db, err := hist.AsOf(id)
	if err != nil {
		return nil, err
	}
	return &Snapshot{eng: e, db: db}, nil
}

// ResolveCommit turns a commit reference — full id, unique id prefix,
// branch name, or unique commit message — into a commit id.
func (e *Engine) ResolveCommit(ref string) (version.CommitID, error) {
	e.mu.Lock()
	hist, err := e.historyLocked()
	e.mu.Unlock()
	if err != nil {
		return "", err
	}
	return hist.Resolve(ref)
}

// DiffVersions returns the net per-relation change from commit a to
// commit b, composed from the stored per-commit deltas through their
// first-parent base.
func (e *Engine) DiffVersions(a, b version.CommitID) (*table.ChangeSet, error) {
	e.mu.Lock()
	hist, err := e.historyLocked()
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return hist.Diff(a, b)
}

// Log returns the checked-out branch's history, newest first (first-parent
// chain down to the root commit).
func (e *Engine) Log() ([]*version.Commit, error) {
	e.mu.Lock()
	hist, err := e.historyLocked()
	branch := e.branch
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	head, err := hist.Head(branch)
	if err != nil {
		return nil, err
	}
	return hist.Log(head)
}

// Merge merges another branch's head into the checked-out branch: a
// three-way merge against their first-parent base in which tuples both
// branches refined in conflicting null/constant ways are reconciled by
// the tuple-level greatest lower bound of the informativeness order
// (preserving exactly the certainty the branches share), with every
// non-silent reconciliation reported in the result.  The live database
// switches to the merged state and registered views are rebuilt against
// it.  Uncommitted changes block the merge.
func (e *Engine) Merge(other, message string) (*version.MergeResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	hist, err := e.historyLocked()
	if err != nil {
		return nil, err
	}
	if !e.pending.Empty() {
		return nil, fmt.Errorf("engine: merge with uncommitted changes (commit first)")
	}
	res, err := hist.Merge(e.branch, other, message)
	if err != nil {
		return nil, err
	}
	e.db = res.State.Clone()
	e.snap = nil
	if e.st != nil {
		if res.FastForward {
			// No new commit: the checked-out branch's ref moved to an
			// existing one.
			err = e.st.Append(&store.Record{Type: store.RecRef, Branch: e.branch, ID: string(res.Commit)})
		} else {
			err = e.persistCommitLocked(res.Commit)
		}
		if err != nil {
			return res, persistErr(res.Commit, err)
		}
	}
	if err := e.rebuildViewsLocked(); err != nil {
		return res, err
	}
	return res, nil
}
