package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/value"
)

// codedTestDB is parallelTestDB with string-dominated columns, so the
// engine-level differential exercises the value dictionary rather than
// only the directly coded int space.
func codedTestDB(tuples, domain, nullIDs int, seed int64) *table.Database {
	rnd := rand.New(rand.NewSource(seed))
	d := table.NewDatabase(testSchema())
	for _, name := range []string{"R", "S", "T"} {
		for i := 0; i < tuples; i++ {
			t := make(table.Tuple, 2)
			for j := range t {
				switch {
				case nullIDs > 0 && rnd.Intn(60) == 0:
					t[j] = value.Null(uint64(rnd.Intn(nullIDs) + 1))
				case rnd.Intn(3) == 0:
					t[j] = value.Int(int64(rnd.Intn(domain)))
				default:
					t[j] = value.String(fmt.Sprintf("v%02d", rnd.Intn(domain)))
				}
			}
			d.MustAdd(name, t)
		}
	}
	return d
}

// TestEngineCodedBitIdentical crosses the coded knob with every other
// evaluation dimension at the engine level: for each query, mode
// certain/naive, planner on/off, columnar on/off and worker budget
// 1/2/4, the dictionary-coded tier must produce exactly the fingerprint
// the uncoded paths do.
func TestEngineCodedBitIdentical(t *testing.T) {
	eng := New(codedTestDB(1200, 40, 3, 11))
	queries := map[string]ra.Expr{
		"base":   ra.Base("R"),
		"select": ra.Select{Input: ra.Base("R"), Pred: ra.Neq(ra.Attr("a"), ra.Attr("b"))},
		"join":   ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}},
		"select-join": ra.Select{
			Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
			Pred:  ra.Neq(ra.Attr("a"), ra.Attr("c")),
		},
		"diff": ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")},
		"project-diff": ra.Diff{
			Left:  ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}},
			Right: ra.Project{Input: ra.Base("T"), Attrs: []string{"a"}},
		},
		"union": ra.Union{
			Left:  ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a"}},
			Right: ra.Project{Input: ra.Base("T"), Attrs: []string{"a"}},
		},
	}
	for name, q := range queries {
		for _, mode := range []Mode{ModeCertain, ModeNaive} {
			for _, planner := range []PlannerSetting{PlannerOn, PlannerOff} {
				for _, columnar := range []ColumnarSetting{ColumnarOn, ColumnarOff} {
					for _, workers := range []int{1, 2, 4} {
						opts := Options{
							Mode: mode, Planner: planner, Columnar: columnar,
							Workers: workers, Coded: CodedOff,
						}
						want, err := eng.Eval(q, opts)
						if err != nil {
							t.Fatalf("%s/%v/planner=%v/columnar=%d/workers=%d uncoded: %v",
								name, mode, planner, columnar, workers, err)
						}
						opts.Coded = CodedOn
						got, err := eng.Eval(q, opts)
						if err != nil {
							t.Fatalf("%s/%v/planner=%v/columnar=%d/workers=%d coded: %v",
								name, mode, planner, columnar, workers, err)
						}
						if fp(got) != fp(want) {
							t.Fatalf("%s/%v/planner=%v/columnar=%d/workers=%d: coded answer differs from uncoded path",
								name, mode, planner, columnar, workers)
						}
					}
				}
			}
		}
	}
}

// TestParseCoded pins the textual knob accepted by the CLIs.
func TestParseCoded(t *testing.T) {
	cases := []struct {
		in   string
		want CodedSetting
		ok   bool
	}{
		{"", CodedAuto, true},
		{"auto", CodedAuto, true},
		{"on", CodedOn, true},
		{"off", CodedOff, true},
		{"banana", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseCoded(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseCoded(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseCoded(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
