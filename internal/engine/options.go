package engine

import (
	"fmt"
	"runtime"

	"incdata/internal/certain"
	"incdata/internal/plan"
	"incdata/internal/value"
)

// Mode selects how a query is evaluated.  The zero value is ModeCertain,
// the sound cheap route the paper's Section 6 results justify.
type Mode uint8

// Evaluation modes, one per certain-answer notion the library implements.
const (
	// ModeCertain is naïve evaluation followed by null stripping
	// (equation (4)): correct for positive queries under OWA/CWA and for
	// RAcwa queries under CWA.
	ModeCertain Mode = iota
	// ModeNaive is naïve evaluation with nulls kept in the answer (the
	// certainO representation for monotone generic queries).
	ModeNaive
	// ModeCertainCWA is intersection-based certain answers by CWA world
	// enumeration — the exact (exponential) ground truth.
	ModeCertainCWA
	// ModeCertainOWA is intersection-based certain answers over the
	// enumerated OWA world set (exact for monotone queries when
	// MaxExtraTuples is 0).
	ModeCertainOWA
	// ModeCertainObject is certainO under CWA: the greatest lower bound of
	// the answer set in the information ordering (Section 5.3).
	ModeCertainObject
)

// modeNames maps the textual mode names (as used by the incq CLI) to
// modes.
var modeNames = map[string]Mode{
	"certain":        ModeCertain,
	"naive":          ModeNaive,
	"certain-cwa":    ModeCertainCWA,
	"certain-owa":    ModeCertainOWA,
	"certain-object": ModeCertainObject,
}

// String returns the textual name of the mode.
func (m Mode) String() string {
	for name, mode := range modeNames {
		if mode == m {
			return name
		}
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ParseMode converts a textual mode name into a Mode.
func ParseMode(s string) (Mode, error) {
	if m, ok := modeNames[s]; ok {
		return m, nil
	}
	return 0, fmt.Errorf("engine: unknown mode %q (want naive, certain, certain-cwa, certain-owa or certain-object)", s)
}

// PlannerSetting selects the evaluation path: the query planner (planned
// one-shot evaluation and world-invariant subplan hoisting) or the
// naïve-evaluation oracle, which computes identical results, only slower.
type PlannerSetting uint8

const (
	// PlannerAuto is the zero value and defaults to the planner being on.
	PlannerAuto PlannerSetting = iota
	// PlannerOn selects the planned fast paths.
	PlannerOn
	// PlannerOff selects the naïve-evaluation oracle.
	PlannerOff
)

// ParsePlanner converts "on" or "off" (or "", meaning the default) into a
// PlannerSetting.
func ParsePlanner(s string) (PlannerSetting, error) {
	switch s {
	case "", "auto":
		return PlannerAuto, nil
	case "on":
		return PlannerOn, nil
	case "off":
		return PlannerOff, nil
	default:
		return 0, fmt.Errorf("engine: planner must be on or off (got %q)", s)
	}
}

// ColumnarSetting selects the plan execution layout: the vectorized
// columnar path (column chunks, selection vectors, columnar kernels) or
// the per-tuple row path, which computes bit-identical results and is
// kept as the differential oracle of the columnar one.
type ColumnarSetting uint8

const (
	// ColumnarAuto is the zero value and defaults to columnar being on.
	ColumnarAuto ColumnarSetting = iota
	// ColumnarOn selects the vectorized columnar path.
	ColumnarOn
	// ColumnarOff selects the per-tuple row path (the oracle).
	ColumnarOff
)

// ParseColumnar converts "on" or "off" (or "", meaning the default) into
// a ColumnarSetting.
func ParseColumnar(s string) (ColumnarSetting, error) {
	switch s {
	case "", "auto":
		return ColumnarAuto, nil
	case "on":
		return ColumnarOn, nil
	case "off":
		return ColumnarOff, nil
	default:
		return 0, fmt.Errorf("engine: columnar must be on or off (got %q)", s)
	}
}

// CodedSetting selects whether planned evaluation may run on the
// dictionary-coded execution tier: monomorphic []uint64 code-vector
// kernels over the database's value dictionary.  The coded path computes
// bit-identical results to the columnar and row paths; eligibility is
// resolved per query subtree (every base relation read must encode
// cleanly), so "on" and the auto default are always safe and silently
// fall back where coding does not apply.
type CodedSetting uint8

const (
	// CodedAuto is the zero value and defaults to coded being on: the
	// coded path is used whenever the read relations' dictionaries are
	// available, and falls back to the columnar path otherwise.
	CodedAuto CodedSetting = iota
	// CodedOn selects the coded path where eligible.
	CodedOn
	// CodedOff disables the coded tier, keeping the columnar path as the
	// differential oracle.
	CodedOff
)

// ParseCoded converts "on" or "off" (or "", meaning the default) into a
// CodedSetting.
func ParseCoded(s string) (CodedSetting, error) {
	switch s {
	case "", "auto":
		return CodedAuto, nil
	case "on":
		return CodedOn, nil
	case "off":
		return CodedOff, nil
	default:
		return 0, fmt.Errorf("engine: coded must be on or off (got %q)", s)
	}
}

// Options is the unified evaluation-options struct of the engine facade,
// replacing the per-package option structs the entry points used to take.
// The zero value asks for certain answers via null stripping with the
// planner on — the cheapest sound configuration.
type Options struct {
	// Mode selects the certain-answer notion to compute.
	Mode Mode

	// Planner selects the planned fast paths or the oracle; PlannerAuto
	// (the zero value) means on.
	Planner PlannerSetting

	// Columnar selects the vectorized columnar execution path or the
	// per-tuple row path of planned evaluation; ColumnarAuto (the zero
	// value) means on.  Only the planned naive/certain modes read it —
	// the world-enumeration modes and the oracle path are row-based.
	Columnar ColumnarSetting

	// Coded selects the dictionary-coded execution tier of planned
	// evaluation; CodedAuto (the zero value) means on where eligible.
	// Like Columnar, only the planned naive/certain modes read it.
	Coded CodedSetting

	// ExtraFresh is the number of fresh constants (outside adom and the
	// query constants) added to the world-enumeration domain; 0 defaults
	// to 1 when the database has nulls.  Only the world-enumeration modes
	// read it.
	ExtraFresh int

	// MaxExtraTuples bounds the additional tuples considered in OWA world
	// enumeration (ModeCertainOWA; 0 enumerates only minimal worlds).
	MaxExtraTuples int

	// ExtraConstants are added to the enumeration domain on top of adom
	// and the constants mentioned by the query.
	ExtraConstants []value.Value

	// Workers is the intra-query worker budget: morsel-parallel plan
	// evaluation (partitioned hash joins), partition-parallel stable parts
	// of world plans, and the per-world enumeration pool all share it.  The
	// zero value resolves to GOMAXPROCS; 1 forces the serial path (the
	// differential oracle every parallel result is pinned against); > 1
	// uses a pool of exactly that many goroutines.  (Engine.Serve
	// additionally parallelizes across the queries of a batch.)
	Workers int

	// MaxWorlds aborts world enumeration when more valuations would be
	// needed (0 means no bound).
	MaxWorlds int

	// MemBudget, when positive, bounds (approximately, in bytes) the
	// memory a hash join may pin for its build side: a build side over
	// budget is Grace-partitioned to disk and joined partition by
	// partition, so certain-answer queries run against databases larger
	// than RAM.  Answers are bit-identical to the unbounded path.  A
	// budgeted evaluation runs on the serial row engine (Workers,
	// Columnar and Coded are overridden): the budget is a hard cap, and
	// the parallel/vectorized tiers assume resident build sides.
	MemBudget int64
}

// resolvedWorkers resolves the Workers knob: 0 (the zero value) means
// GOMAXPROCS, anything below 1 clamps to serial.
func (o Options) resolvedWorkers() int {
	if o.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// resolvedColumnar resolves the Columnar knob: anything but an explicit
// off means the vectorized path.
func (o Options) resolvedColumnar() bool {
	return o.Columnar != ColumnarOff
}

// resolvedCoded resolves the Coded knob: anything but an explicit off
// means the coded tier is offered (per-subtree eligibility still
// decides whether it actually runs).
func (o Options) resolvedCoded() bool {
	return o.Coded != CodedOff
}

// evalConfig bundles the resolved execution knobs for package plan.
func (o Options) evalConfig() plan.EvalConfig {
	return plan.EvalConfig{
		Workers:   o.resolvedWorkers(),
		Columnar:  o.resolvedColumnar(),
		Coded:     o.resolvedCoded(),
		MemBudget: o.MemBudget,
	}
}

// certainOptions converts the world-enumeration knobs for package certain.
func (o Options) certainOptions() certain.Options {
	return certain.Options{
		ExtraFresh:     o.ExtraFresh,
		MaxExtraTuples: o.MaxExtraTuples,
		ExtraConstants: o.ExtraConstants,
		Workers:        o.resolvedWorkers(),
		MaxWorlds:      o.MaxWorlds,
	}
}
