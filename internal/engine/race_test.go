package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/version"
)

// TestConcurrentSnapshotReadersWithWriter is the snapshot-isolation stress
// test: one writer keeps mutating the engine's database while many readers
// take snapshots and evaluate queries (planned and oracle paths, one-shot
// and world-enumeration modes).  Run under -race it checks the COW
// relations, the stamp-validated plan caches and the session pools for
// data races; in any mode it checks that each snapshot's answers are
// repeatable while writes land around them.
func TestConcurrentSnapshotReadersWithWriter(t *testing.T) {
	s := schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "b", "c"),
	)
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "⊥1")
	d.MustAddRow("R", "2", "3")
	d.MustAddRow("S", "3", "4")
	d.MustAddRow("S", "⊥2", "5")
	eng := New(d)

	queries := []ra.Expr{
		ra.Base("R"),
		ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("a"), ra.LitInt(1))},
		ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}},
		ra.Diff{Left: ra.Base("R"), Right: ra.Rename{Input: ra.Base("S"), As: "S2", Attrs: []string{"a", "b"}}},
	}
	modes := []Options{
		{Mode: ModeCertain},
		{Mode: ModeNaive},
		{Mode: ModeCertainCWA, ExtraFresh: 1, MaxWorlds: 1 << 16},
		{Mode: ModeCertainCWA, ExtraFresh: 1, MaxWorlds: 1 << 16, Workers: 2},
		{Mode: ModeCertain, Planner: PlannerOff},
	}

	const (
		writes         = 60
		readers        = 4
		readsPerReader = 40
	)

	var wg sync.WaitGroup
	wg.Add(1 + readers)
	errs := make(chan error, readers+1)

	// Writer: keep inserting fresh tuples so every write really mutates and
	// bumps stamps.  New null tuples reuse the existing marked nulls, so the
	// world count stays |dom|^2 and every CWA read finishes within its
	// MaxWorlds bound.
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			i := i
			err := eng.Update(func(db *table.Database) error {
				if i%5 == 0 {
					return db.Add("R", table.NewTuple(value.Int(int64(100+i)), value.Null(1)))
				}
				return db.Add("S", table.NewTuple(value.Int(int64(100+i)), value.Int(int64(i))))
			})
			if err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		r := r
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				snap := eng.Snapshot()
				q := queries[(r+i)%len(queries)]
				opts := modes[(r*readsPerReader+i)%len(modes)]
				first, err := snap.Eval(q, opts)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				// The same snapshot must answer identically no matter how
				// many writes landed in between.
				again, err := snap.Eval(q, opts)
				if err != nil {
					errs <- fmt.Errorf("reader %d (repeat): %w", r, err)
					return
				}
				if first.CanonicalKey() != again.CanonicalKey() {
					errs <- fmt.Errorf("reader %d: snapshot answer not repeatable", r)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentServeWithWriter drives the batch API while a writer
// mutates: each batch must be internally consistent (all requests see one
// snapshot), which is checked by pairing each query with itself and
// requiring identical answers within the batch.
func TestConcurrentServeWithWriter(t *testing.T) {
	s := schema.MustNew(schema.NewRelation("R", "a", "b"))
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "2")
	d.MustAddRow("R", "2", "⊥1")
	eng := New(d)

	q := ra.Base("R")
	reqs := []Request{
		{Query: q, Opts: Options{Mode: ModeNaive}},
		{Query: q, Opts: Options{Mode: ModeNaive}},
		{Query: q, Opts: Options{Mode: ModeCertain}},
		{Query: q, Opts: Options{Mode: ModeCertain}},
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = eng.Update(func(db *table.Database) error {
				return db.Add("R", table.NewTuple(value.Int(int64(10+i)), value.Int(int64(i))))
			})
		}
	}()

	for i := 0; i < 50; i++ {
		resp := eng.Serve(reqs, 4)
		for j := 0; j < len(resp); j += 2 {
			if resp[j].Err != nil || resp[j+1].Err != nil {
				t.Fatalf("batch errors: %v, %v", resp[j].Err, resp[j+1].Err)
			}
			if resp[j].Rel.CanonicalKey() != resp[j+1].Rel.CanonicalKey() {
				t.Fatal("one batch saw two different database states")
			}
		}
	}
	<-done
}

// TestConcurrentViewReadersWithWriter stresses maintained views under
// concurrency: a writer commits updates (each refreshing the registered
// views under the engine lock) while readers pull view answers, take
// snapshots and evaluate the same queries directly.  Under -race this
// checks that the copy-on-write answer clones handed out by Answers are
// safe to read while the next refresh mutates the view's materialization,
// and that delta capture never races snapshot readers.
func TestConcurrentViewReadersWithWriter(t *testing.T) {
	s := schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "b", "c"),
	)
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "2")
	d.MustAddRow("R", "3", "⊥1")
	d.MustAddRow("S", "2", "4")
	eng := New(d)

	joinQ := ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}}
	diffQ := ra.Diff{Left: ra.Base("R"), Right: ra.Rename{Input: ra.Base("S"), As: "S2", Attrs: []string{"a", "b"}}}
	if err := eng.Register("join", joinQ, Options{Mode: ModeCertain}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register("diff", diffQ, Options{Mode: ModeCertain, Planner: PlannerOff}); err != nil {
		t.Fatal(err)
	}

	const (
		writes         = 80
		readers        = 4
		readsPerReader = 60
	)
	var wg sync.WaitGroup
	wg.Add(1 + readers)
	errs := make(chan error, readers+1)

	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			i := i
			err := eng.Update(func(db *table.Database) error {
				switch i % 4 {
				case 0:
					return db.Add("R", table.NewTuple(value.Int(int64(i)), value.Null(1)))
				case 1:
					return db.Add("S", table.NewTuple(value.Int(int64(i%7)), value.Int(int64(i))))
				case 2:
					return db.Add("R", table.NewTuple(value.Int(int64(i%5)), value.Int(int64(i%7))))
				default:
					ts := db.Relation("R").SortedTuples()
					if len(ts) > 0 {
						db.Relation("R").Remove(ts[i%len(ts)])
					}
					return nil
				}
			})
			if err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		r := r
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				name, q := "join", ra.Expr(joinQ)
				if (r+i)%2 == 1 {
					name, q = "diff", diffQ
				}
				ans, err := eng.Answers(name)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				// The handed-out clone must stay stable while refreshes land.
				key := ans.CanonicalKey()
				snap := eng.Snapshot()
				if _, err := snap.Eval(q, Options{Mode: ModeCertain}); err != nil {
					errs <- fmt.Errorf("reader %d eval: %w", r, err)
					return
				}
				if ans.CanonicalKey() != key {
					errs <- fmt.Errorf("reader %d: view answer mutated after handout", r)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiesced: every view must equal from-scratch evaluation.
	for name, q := range map[string]ra.Expr{"join": joinQ, "diff": diffQ} {
		got, err := eng.Answers(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Eval(q, Options{Mode: ModeCertain})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("view %s diverged after concurrent run:\ngot  %v\nwant %v", name, got, want)
		}
	}
}

// TestConcurrentAsOfReadersWithCommitter is the version-history stress
// test: one writer keeps updating and committing while readers time-travel
// to random historical commits and evaluate queries there (planned and
// oracle paths).  Run under -race it checks the history's internal
// locking, the shared reconstructed states and the stamp-validated plan
// caches; in any mode it checks that a historical read is repeatable — the
// same commit always yields the same answer, no matter how far the head
// has moved.
func TestConcurrentAsOfReadersWithCommitter(t *testing.T) {
	s := schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "b", "c"),
	)
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "⊥1")
	d.MustAddRow("S", "3", "4")
	eng := New(d)
	root, err := eng.EnableHistory(HistoryOptions{CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}

	queries := []ra.Expr{
		ra.Base("R"),
		ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}},
	}
	modes := []Options{
		{Mode: ModeCertain},
		{Mode: ModeNaive, Planner: PlannerOff},
		{Mode: ModeCertainCWA, ExtraFresh: 1, MaxWorlds: 1 << 16},
	}

	const (
		commits        = 40
		readers        = 4
		readsPerReader = 60
	)

	// answers[i] is the fingerprint each query/mode produced at ids[i],
	// recorded by the writer right after committing; readers must
	// reproduce it exactly via AsOf.
	type recorded struct {
		id  version.CommitID
		fps []string
	}
	var (
		mu      sync.Mutex
		history = []recorded{}
	)
	record := func(id version.CommitID) error {
		snap, err := eng.AsOf(id)
		if err != nil {
			return err
		}
		var fps []string
		for _, q := range queries {
			for _, opts := range modes {
				rel, err := snap.Eval(q, opts)
				if err != nil {
					return err
				}
				fps = append(fps, fp(rel))
			}
		}
		mu.Lock()
		history = append(history, recorded{id: id, fps: fps})
		mu.Unlock()
		return nil
	}
	if err := record(root); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1 + readers)
	errs := make(chan error, readers+1)

	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			if err := eng.Update(func(db *table.Database) error {
				return db.Add("R", table.NewTuple(value.String(fmt.Sprintf("w%d", i)), value.Int(int64(i%5))))
			}); err != nil {
				errs <- err
				return
			}
			id, err := eng.Commit(fmt.Sprintf("c%d", i))
			if err != nil {
				errs <- err
				return
			}
			if err := record(id); err != nil {
				errs <- err
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < readsPerReader; i++ {
				mu.Lock()
				rec := history[rng.Intn(len(history))]
				mu.Unlock()
				snap, err := eng.AsOf(rec.id)
				if err != nil {
					errs <- err
					return
				}
				j := 0
				for _, q := range queries {
					for _, opts := range modes {
						rel, err := snap.Eval(q, opts)
						if err != nil {
							errs <- err
							return
						}
						if got := fp(rel); got != rec.fps[j] {
							errs <- fmt.Errorf("historical read of %s changed: query %d mode %d", rec.id, j/len(modes), j%len(modes))
							return
						}
						j++
					}
				}
			}
		}(int64(r))
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
