package engine

import (
	"fmt"
	"sync"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// TestConcurrentSnapshotReadersWithWriter is the snapshot-isolation stress
// test: one writer keeps mutating the engine's database while many readers
// take snapshots and evaluate queries (planned and oracle paths, one-shot
// and world-enumeration modes).  Run under -race it checks the COW
// relations, the stamp-validated plan caches and the session pools for
// data races; in any mode it checks that each snapshot's answers are
// repeatable while writes land around them.
func TestConcurrentSnapshotReadersWithWriter(t *testing.T) {
	s := schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "b", "c"),
	)
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "⊥1")
	d.MustAddRow("R", "2", "3")
	d.MustAddRow("S", "3", "4")
	d.MustAddRow("S", "⊥2", "5")
	eng := New(d)

	queries := []ra.Expr{
		ra.Base("R"),
		ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("a"), ra.LitInt(1))},
		ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}},
		ra.Diff{Left: ra.Base("R"), Right: ra.Rename{Input: ra.Base("S"), As: "S2", Attrs: []string{"a", "b"}}},
	}
	modes := []Options{
		{Mode: ModeCertain},
		{Mode: ModeNaive},
		{Mode: ModeCertainCWA, ExtraFresh: 1, MaxWorlds: 1 << 16},
		{Mode: ModeCertainCWA, ExtraFresh: 1, MaxWorlds: 1 << 16, Workers: 2},
		{Mode: ModeCertain, Planner: PlannerOff},
	}

	const (
		writes         = 60
		readers        = 4
		readsPerReader = 40
	)

	var wg sync.WaitGroup
	wg.Add(1 + readers)
	errs := make(chan error, readers+1)

	// Writer: keep inserting fresh tuples so every write really mutates and
	// bumps stamps.  New null tuples reuse the existing marked nulls, so the
	// world count stays |dom|^2 and every CWA read finishes within its
	// MaxWorlds bound.
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			i := i
			err := eng.Update(func(db *table.Database) error {
				if i%5 == 0 {
					return db.Add("R", table.NewTuple(value.Int(int64(100+i)), value.Null(1)))
				}
				return db.Add("S", table.NewTuple(value.Int(int64(100+i)), value.Int(int64(i))))
			})
			if err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		r := r
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				snap := eng.Snapshot()
				q := queries[(r+i)%len(queries)]
				opts := modes[(r*readsPerReader+i)%len(modes)]
				first, err := snap.Eval(q, opts)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				// The same snapshot must answer identically no matter how
				// many writes landed in between.
				again, err := snap.Eval(q, opts)
				if err != nil {
					errs <- fmt.Errorf("reader %d (repeat): %w", r, err)
					return
				}
				if first.CanonicalKey() != again.CanonicalKey() {
					errs <- fmt.Errorf("reader %d: snapshot answer not repeatable", r)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentServeWithWriter drives the batch API while a writer
// mutates: each batch must be internally consistent (all requests see one
// snapshot), which is checked by pairing each query with itself and
// requiring identical answers within the batch.
func TestConcurrentServeWithWriter(t *testing.T) {
	s := schema.MustNew(schema.NewRelation("R", "a", "b"))
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "2")
	d.MustAddRow("R", "2", "⊥1")
	eng := New(d)

	q := ra.Base("R")
	reqs := []Request{
		{Query: q, Opts: Options{Mode: ModeNaive}},
		{Query: q, Opts: Options{Mode: ModeNaive}},
		{Query: q, Opts: Options{Mode: ModeCertain}},
		{Query: q, Opts: Options{Mode: ModeCertain}},
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = eng.Update(func(db *table.Database) error {
				return db.Add("R", table.NewTuple(value.Int(int64(10+i)), value.Int(int64(i))))
			})
		}
	}()

	for i := 0; i < 50; i++ {
		resp := eng.Serve(reqs, 4)
		for j := 0; j < len(resp); j += 2 {
			if resp[j].Err != nil || resp[j+1].Err != nil {
				t.Fatalf("batch errors: %v, %v", resp[j].Err, resp[j+1].Err)
			}
			if resp[j].Rel.CanonicalKey() != resp[j+1].Rel.CanonicalKey() {
				t.Fatal("one batch saw two different database states")
			}
		}
	}
	<-done
}
