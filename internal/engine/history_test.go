package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/version"
)

// histStep is one concrete mutation of a randomized history stream,
// replayable onto a fresh database for the from-scratch baseline.
type histStep struct {
	rel string
	add bool
	t   table.Tuple
}

func randomHistStream(rng *rand.Rand, n int) []histStep {
	var present []histStep
	perRel := map[string]int{}
	out := make([]histStep, 0, n)
	rels := []string{"R", "S", "T"}
	for i := 0; i < n; i++ {
		rel := rels[rng.Intn(len(rels))]
		// Deletions keep every relation at testDB scale (at most four
		// tuples) so the GLB and world-enumeration modes stay tractable.
		if len(present) > 0 && (rng.Intn(3) == 0 || perRel[rel] >= 4) {
			j := rng.Intn(len(present))
			out = append(out, histStep{rel: present[j].rel, add: false, t: present[j].t})
			perRel[present[j].rel]--
			present = append(present[:j], present[j+1:]...)
			continue
		}
		t := make(table.Tuple, 2)
		for k := range t {
			// Nulls come from a pool of two (as in testDB) so the world
			// count stays tractable for the enumeration and GLB modes.
			if rng.Intn(4) == 0 {
				t[k] = value.Null(uint64(rng.Intn(2) + 1))
			} else {
				t[k] = value.Int(int64(rng.Intn(4)))
			}
		}
		s := histStep{rel: rel, add: true, t: t}
		present = append(present, s)
		perRel[rel]++
		out = append(out, s)
	}
	return out
}

// TestHistoryDifferential is the acceptance pin of the version subsystem:
// certain answers at every historical commit — in every mode, with the
// planner on and off — are bit-identical to evaluating a from-scratch
// database built by replaying the update stream up to that commit.
func TestHistoryDifferential(t *testing.T) {
	worldOpts := Options{ExtraFresh: 1, MaxWorlds: 1 << 13}
	modes := []Mode{ModeNaive, ModeCertain, ModeCertainCWA, ModeCertainOWA, ModeCertainObject}
	for _, checkpointEvery := range []int{-1, 2, 16} {
		rng := rand.New(rand.NewSource(int64(7 + checkpointEvery)))
		eng := New(table.NewDatabase(testSchema()))
		if _, err := eng.EnableHistory(HistoryOptions{CheckpointEvery: checkpointEvery}); err != nil {
			t.Fatal(err)
		}
		stream := randomHistStream(rng, 40)
		prefixAt := map[version.CommitID]int{}
		var ids []version.CommitID
		i := 0
		for i < len(stream) {
			n := 1 + rng.Intn(5)
			if i+n > len(stream) {
				n = len(stream) - i
			}
			batch := stream[i : i+n]
			if err := eng.Update(func(db *table.Database) error {
				for _, s := range batch {
					if s.add {
						db.MustAdd(s.rel, s.t)
					} else {
						db.Relation(s.rel).Remove(s.t)
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			id, err := eng.Commit(fmt.Sprintf("c%d", i))
			if err != nil {
				t.Fatal(err)
			}
			i += n
			prefixAt[id] = i
			ids = append(ids, id)
		}

		// The reconstructed state must equal the from-scratch replay at
		// EVERY commit; the full query differential (all modes × planner
		// settings, world enumeration included) samples a handful of
		// commits to stay fast.
		sampled := map[version.CommitID]bool{ids[0]: true, ids[len(ids)-1]: true}
		for len(sampled) < 4 && len(sampled) < len(ids) {
			sampled[ids[rng.Intn(len(ids))]] = true
		}
		for _, id := range ids {
			snap, err := eng.AsOf(id)
			if err != nil {
				t.Fatal(err)
			}
			// From-scratch replay baseline, evaluated by a fresh engine.
			base := table.NewDatabase(testSchema())
			for _, s := range stream[:prefixAt[id]] {
				if s.add {
					base.MustAdd(s.rel, s.t)
				} else {
					base.Relation(s.rel).Remove(s.t)
				}
			}
			if !snap.Database().Equal(base) {
				t.Fatalf("AsOf(%s) state differs from replay", id)
			}
			if !sampled[id] {
				continue
			}
			scratch := New(base)
			for qname, q := range testQueries() {
				for _, planner := range []PlannerSetting{PlannerOn, PlannerOff} {
					for _, mode := range modes {
						// certainO's GLB cost explodes with the number of
						// distinct per-world answers; as in
						// TestEngineDifferential it runs on the tiny-answer
						// queries only.
						if mode == ModeCertainObject && qname != "base" && qname != "select" && qname != "delta" {
							continue
						}
						opts := worldOpts
						opts.Mode = mode
						opts.Planner = planner
						got, gerr := snap.Eval(q, opts)
						want, werr := scratch.Eval(q, opts)
						if (gerr == nil) != (werr == nil) {
							t.Fatalf("commit %s %s mode=%v planner=%v: err %v vs %v", id, qname, mode, planner, gerr, werr)
						}
						if gerr == nil && fp(got) != fp(want) {
							t.Fatalf("commit %s %s mode=%v planner=%v: answers differ\ngot:  %s\nwant: %s",
								id, qname, mode, planner, got, want)
						}
					}
				}
			}
		}
	}
}

// TestHistoryCommitBasics covers the facade plumbing: empty commits
// collapse to the head, pending changes block checkout/merge, and
// unknown branches error.
func TestHistoryCommitBasics(t *testing.T) {
	eng := New(testDB(1))
	if _, err := eng.Commit("x"); err == nil {
		t.Fatal("Commit without history must fail")
	}
	root, err := eng.EnableHistory(HistoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.EnableHistory(HistoryOptions{}); err == nil {
		t.Fatal("double EnableHistory must fail")
	}
	// Nothing pending: Commit returns the head (the root) unchanged.
	if id, err := eng.Commit("empty"); err != nil || id != root {
		t.Fatalf("empty commit = %v, %v; want root %v", id, err, root)
	}
	if err := eng.Update(func(db *table.Database) error {
		return db.Add("R", table.NewTuple(value.Int(9), value.Int(9)))
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Checkout("main"); err == nil {
		t.Fatal("checkout with uncommitted changes must fail")
	}
	if _, err := eng.Merge("main", "m"); err == nil {
		t.Fatal("merge with uncommitted changes must fail")
	}
	c1, err := eng.Commit("first")
	if err != nil {
		t.Fatal(err)
	}
	if c1 == root {
		t.Fatal("non-empty commit must advance the head")
	}
	branch, head, err := eng.Head()
	if err != nil || branch != "main" || head != c1 {
		t.Fatalf("Head = %s %v %v", branch, head, err)
	}
	log, err := eng.Log()
	if err != nil || len(log) != 2 || log[0].ID != c1 {
		t.Fatalf("Log = %v, %v", log, err)
	}
	if err := eng.Checkout("nope"); err == nil {
		t.Fatal("checkout of unknown branch must fail")
	}
	if _, err := eng.AsOf("bogus"); err == nil {
		t.Fatal("AsOf of unknown commit must fail")
	}

	// DiffVersions between root and head is exactly the committed insert.
	cs, err := eng.DiffVersions(root, c1)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Size() != 1 || len(cs.Delta("R").Inserted) != 1 {
		t.Fatalf("diff root..c1 = %s", cs)
	}
}

// TestHistoryBranchCheckoutViews pins the branch workflow end to end and
// that registered views survive Checkout and Merge, tracking the head
// branch's state.
func TestHistoryBranchCheckoutViews(t *testing.T) {
	eng := New(testDB(2))
	if _, err := eng.EnableHistory(HistoryOptions{}); err != nil {
		t.Fatal(err)
	}
	q := ra.Base("R")
	if err := eng.Register("v", q, Options{Mode: ModeCertain}); err != nil {
		t.Fatal(err)
	}

	insert := func(a, b int64) {
		if err := eng.Update(func(db *table.Database) error {
			return db.Add("R", table.NewTuple(value.Int(a), value.Int(b)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	wantView := func(context string) {
		t.Helper()
		got, err := eng.Answers("v")
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Eval(q, Options{Mode: ModeCertain})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: view answer %s, want %s", context, got, want)
		}
	}

	insert(10, 10)
	if _, err := eng.Commit("base"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Branch("side"); err != nil {
		t.Fatal(err)
	}
	insert(11, 11)
	if _, err := eng.Commit("main work"); err != nil {
		t.Fatal(err)
	}
	wantView("on main")

	if err := eng.Checkout("side"); err != nil {
		t.Fatal(err)
	}
	// The side branch must not see main's (11,11) insert.
	r, err := eng.Eval(ra.Base("R"), Options{Mode: ModeNaive})
	if err != nil {
		t.Fatal(err)
	}
	if r.Contains(table.NewTuple(value.Int(11), value.Int(11))) {
		t.Fatal("side branch sees main's commit")
	}
	wantView("after checkout")

	insert(12, 12)
	if _, err := eng.Commit("side work"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Checkout("main"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Merge("side", "merge side")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Fatalf("disjoint merge conflicts: %v", res.Conflicts)
	}
	// The merged head holds both branches' inserts, and the view tracks it.
	r, err = eng.Eval(ra.Base("R"), Options{Mode: ModeNaive})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{10, 11, 12} {
		if !r.Contains(table.NewTuple(value.Int(v), value.Int(v))) {
			t.Fatalf("merged state misses (%d,%d): %s", v, v, r)
		}
	}
	wantView("after merge")

	// Updates keep committing on the merged head.
	insert(13, 13)
	if _, err := eng.Commit("post-merge"); err != nil {
		t.Fatal(err)
	}
	wantView("after post-merge commit")
}

// TestHistoryPlanCacheReuse pins that repeated AsOf reads of one commit
// share the reconstructed state and therefore hit the plan caches.
func TestHistoryPlanCacheReuse(t *testing.T) {
	eng := New(testDB(3))
	if _, err := eng.EnableHistory(HistoryOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(func(db *table.Database) error {
		return db.Add("R", table.NewTuple(value.Int(5), value.Int(5)))
	}); err != nil {
		t.Fatal(err)
	}
	c1, err := eng.Commit("c1")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(func(db *table.Database) error {
		return db.Add("S", table.NewTuple(value.Int(6), value.Int(6)))
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit("c2"); err != nil {
		t.Fatal(err)
	}

	q := ra.Base("R")
	opts := Options{Mode: ModeCertainCWA, ExtraFresh: 1, MaxWorlds: 1 << 16}
	for i := 0; i < 3; i++ {
		snap, err := eng.AsOf(c1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := snap.Eval(q, opts); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats().Planned
	if st.WorldHits < 2 {
		t.Fatalf("world cache hits = %d, want >= 2 (stats: %+v)", st.WorldHits, st)
	}
}

// TestPlanCacheEvictions pins the LRU bound: streaming more distinct
// queries than the cache cap evicts old entries and surfaces the count in
// Engine.Stats.
func TestPlanCacheEvictions(t *testing.T) {
	eng := New(testDB(4))
	for i := 0; i < 200; i++ {
		q := ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("a"), ra.LitInt(int64(i)))}
		if _, err := eng.Eval(q, Options{Mode: ModeCertain}); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats().Planned
	if st.OneShotEvictions == 0 {
		t.Fatalf("expected one-shot evictions after 200 distinct queries: %+v", st)
	}
	// Evicted entries re-miss: the cache stayed bounded.
	if st.OneShotMisses < 200 {
		t.Fatalf("misses = %d, want 200 (each query distinct): %+v", st.OneShotMisses, st)
	}
}
