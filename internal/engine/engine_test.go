package engine

import (
	"math/rand"
	"testing"

	"incdata/internal/certain"
	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

func testSchema() *schema.Schema {
	return schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "b", "c"),
		schema.NewRelation("T", "a", "b"),
	)
}

func testDB(seed int64) *table.Database {
	rnd := rand.New(rand.NewSource(seed))
	d := table.NewDatabase(testSchema())
	for _, name := range []string{"R", "S", "T"} {
		for i := 0; i < 4; i++ {
			t := make(table.Tuple, 2)
			for j := range t {
				if rnd.Intn(4) == 0 {
					t[j] = value.Null(uint64(rnd.Intn(2) + 1))
				} else {
					t[j] = value.Int(int64(rnd.Intn(3)))
				}
			}
			d.MustAdd(name, t)
		}
	}
	return d
}

// testQueries covers every operator class, mirroring the planner's own
// differential corpus: splittable plans, diff with invariant and variant
// right sides, and division (per-world fallback).
func testQueries() map[string]ra.Expr {
	return map[string]ra.Expr{
		"base":      ra.Base("R"),
		"select":    ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("a"), ra.LitInt(1))},
		"ucq":       ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}},
		"union":     ra.Union{Left: ra.Base("R"), Right: ra.Base("T")},
		"intersect": ra.Intersect{Left: ra.Base("R"), Right: ra.Base("T")},
		"diff":      ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")},
		"proj-diff": ra.Project{Input: ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")}, Attrs: []string{"a"}},
		"delta":     ra.Delta{Attr1: "d1", Attr2: "d2"},
		"division": ra.Division{
			Left:  ra.Product{Left: ra.Base("R"), Right: ra.Rename{Input: ra.Base("S"), As: "S2", Attrs: []string{"x", "y"}}},
			Right: ra.Rename{Input: ra.Base("S"), As: "S2", Attrs: []string{"x", "y"}},
		},
	}
}

func fp(r *table.Relation) string {
	if r == nil {
		return "<nil>"
	}
	return r.CanonicalKey()
}

func withPlanner(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := certain.EnablePlanner(on)
	defer certain.EnablePlanner(prev)
	f()
}

// TestEngineDifferential requires every engine mode to be bit-identical to
// the direct certain/ra.Eval calls it replaced, with the planner on and
// off — the facade must be a pure re-routing, never a change in results.
func TestEngineDifferential(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	copts := certain.Options{ExtraFresh: 1, MaxWorlds: 1 << 18}
	for name, q := range testQueries() {
		for _, seed := range seeds {
			for _, planner := range []PlannerSetting{PlannerOn, PlannerOff} {
				d := testDB(seed)
				eng := New(d)
				opts := Options{Planner: planner, ExtraFresh: 1, MaxWorlds: 1 << 18}

				type step struct {
					mode   Mode
					direct func() (*table.Relation, error)
				}
				steps := []step{
					{ModeNaive, func() (*table.Relation, error) { return certain.NaiveRaw(q, d) }},
					{ModeCertain, func() (*table.Relation, error) { return certain.Naive(q, d) }},
					{ModeCertainCWA, func() (*table.Relation, error) { return certain.ByWorldsCWA(q, d, copts) }},
					{ModeCertainOWA, func() (*table.Relation, error) { return certain.ByWorldsOWA(q, d, copts) }},
				}
				// certainO's GLB is a direct-product construction whose cost
				// explodes with the number of distinct per-world answers, so —
				// as in the planner's own differential — it runs on the
				// tiny-answer queries only.
				if name == "base" || name == "select" || name == "delta" {
					steps = append(steps, step{ModeCertainObject,
						func() (*table.Relation, error) { return certain.CertainObjectCWA(q, d, copts) }})
				}
				for _, st := range steps {
					opts := opts
					opts.Mode = st.mode
					got, gotErr := eng.Eval(q, opts)
					var want *table.Relation
					var wantErr error
					withPlanner(t, planner != PlannerOff, func() { want, wantErr = st.direct() })
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("%s seed=%d planner=%d mode=%v: error mismatch: %v vs %v",
							name, seed, planner, st.mode, gotErr, wantErr)
					}
					if gotErr == nil && fp(got) != fp(want) {
						t.Errorf("%s seed=%d planner=%d mode=%v: engine answer differs from direct call",
							name, seed, planner, st.mode)
					}
				}

				// Boolean certainty.
				gotB, gotErr := eng.EvalBool(q, opts)
				var wantB bool
				var wantErr error
				withPlanner(t, planner != PlannerOff, func() { wantB, wantErr = certain.BoolCertainCWA(q, d, copts) })
				if (gotErr == nil) != (wantErr == nil) || gotB != wantB {
					t.Errorf("%s seed=%d planner=%d: EvalBool mismatch: (%v,%v) vs (%v,%v)",
						name, seed, planner, gotB, gotErr, wantB, wantErr)
				}

				// ModeNaive with the oracle must equal raw ra.Eval exactly.
				if planner == PlannerOff {
					got, err := eng.Eval(q, Options{Mode: ModeNaive, Planner: PlannerOff})
					want, wantErr := ra.Eval(q, d)
					if (err == nil) != (wantErr == nil) {
						t.Fatalf("%s seed=%d: ModeNaive/oracle error mismatch: %v vs %v", name, seed, err, wantErr)
					}
					if err == nil && fp(got) != fp(want) {
						t.Errorf("%s seed=%d: ModeNaive/oracle differs from ra.Eval", name, seed)
					}
				}
			}
		}
	}
}

// TestEngineCompareMatchesCertain pins Engine.Compare to certain.Compare.
func TestEngineCompareMatchesCertain(t *testing.T) {
	d := testDB(7)
	eng := New(d)
	q := ra.Project{Input: ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")}, Attrs: []string{"a"}}
	got, err := eng.Compare(q, Options{ExtraFresh: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := certain.Compare(q, d, certain.Options{ExtraFresh: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Agree != want.Agree ||
		len(got.MissingFromNaive) != len(want.MissingFromNaive) ||
		len(got.SpuriousInNaive) != len(want.SpuriousInNaive) {
		t.Fatalf("Compare mismatch: %+v vs %+v", got, want)
	}
}

// TestSnapshotIsolationUnderUpdate verifies the core isolation property:
// a snapshot's answers never change, no matter what writers do afterwards.
func TestSnapshotIsolationUnderUpdate(t *testing.T) {
	d := testDB(3)
	eng := New(d)
	q := ra.Base("R")
	opts := Options{Mode: ModeNaive}

	snap := eng.Snapshot()
	before, err := snap.Eval(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(func(db *table.Database) error {
		return db.Add("R", table.MustParseTuple("99", "99"))
	}); err != nil {
		t.Fatal(err)
	}
	after, err := snap.Eval(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fp(before) != fp(after) {
		t.Fatal("snapshot answer changed after a write")
	}
	fresh, err := eng.Eval(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Contains(table.MustParseTuple("99", "99")) {
		t.Fatal("post-write snapshot misses the write")
	}
	if before.Contains(table.MustParseTuple("99", "99")) {
		t.Fatal("pre-write snapshot sees the write")
	}
}

// TestWorldPlanCacheAcrossSnapshots verifies the version-checked plan-cache
// story: a world plan built on one snapshot is reused on later snapshots
// as long as the relations the query reads are unchanged — including after
// writes to other relations — and is invalidated by a write to a relation
// the query does read.
func TestWorldPlanCacheAcrossSnapshots(t *testing.T) {
	d := testDB(5)
	eng := New(d)
	q := ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("a"), ra.LitInt(1))}
	opts := Options{Mode: ModeCertainCWA, ExtraFresh: 1}

	if _, err := eng.Eval(q, opts); err != nil {
		t.Fatal(err)
	}
	misses0 := eng.Stats().Planned.WorldMisses

	// Same snapshot: plain hit.
	if _, err := eng.Eval(q, opts); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats().Planned
	if st.WorldMisses != misses0 || st.WorldHits == 0 {
		t.Fatalf("expected a cache hit on the same snapshot, got %+v", st)
	}

	// Write to S (which q does not read), forcing a NEW snapshot: the
	// stamps of R are unchanged, so the world plan must still be reused.
	if err := eng.Update(func(db *table.Database) error {
		return db.Add("S", table.MustParseTuple("8", "9"))
	}); err != nil {
		t.Fatal(err)
	}
	hitsBefore := eng.Stats().Planned.WorldHits
	if _, err := eng.Eval(q, opts); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats().Planned
	if st.WorldMisses != misses0 {
		t.Fatalf("write to an unread relation invalidated the plan: %+v", st)
	}
	if st.WorldHits <= hitsBefore {
		t.Fatalf("expected a cache hit across snapshots, got %+v", st)
	}

	// Write to R: now the plan must be rebuilt.
	if err := eng.Update(func(db *table.Database) error {
		return db.Add("R", table.MustParseTuple("4", "⊥2"))
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Eval(q, opts); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats().Planned
	if st.WorldMisses != misses0+1 {
		t.Fatalf("write to a read relation must invalidate the plan: %+v", st)
	}

	// And the rebuilt plan's answers match a fresh engine's (no staleness).
	got, err := eng.Eval(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(eng.Snapshot().Database().Clone()).Eval(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fp(got) != fp(want) {
		t.Fatal("cached engine answer differs from a fresh engine's")
	}
}

// TestServeBatch checks the concurrent batch API: responses arrive in
// request order, parallel and serial runs agree, and malformed requests
// fail without poisoning the batch.
func TestServeBatch(t *testing.T) {
	d := testDB(11)
	eng := New(d)
	var reqs []Request
	for name, q := range testQueries() {
		_ = name
		reqs = append(reqs, Request{Query: q, Opts: Options{Mode: ModeCertain}})
		reqs = append(reqs, Request{Query: q, Opts: Options{Mode: ModeCertainCWA, ExtraFresh: 1}})
	}
	reqs = append(reqs, Request{}) // malformed: neither Query nor SQL

	serial := eng.Serve(reqs, 1)
	parallel := eng.Serve(reqs, 8)
	if len(serial) != len(reqs) || len(parallel) != len(reqs) {
		t.Fatalf("response count: %d and %d, want %d", len(serial), len(parallel), len(reqs))
	}
	for i := range reqs {
		if (serial[i].Err == nil) != (parallel[i].Err == nil) {
			t.Fatalf("request %d: error mismatch: %v vs %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Err == nil && fp(serial[i].Rel) != fp(parallel[i].Rel) {
			t.Fatalf("request %d: parallel answer differs from serial", i)
		}
	}
	if serial[len(reqs)-1].Err == nil {
		t.Fatal("malformed request must fail")
	}
}
