package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/value"
)

func TestViewLifecycle(t *testing.T) {
	eng := New(testDB(1))
	q := ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}}
	if err := eng.Register("v", q, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register("v", q, Options{}); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if err := eng.Register("", q, Options{}); err == nil {
		t.Fatal("empty view name must fail")
	}
	if names := eng.Views(); len(names) != 1 || names[0] != "v" {
		t.Fatalf("Views() = %v", names)
	}
	if _, err := eng.Answers("nope"); err == nil {
		t.Fatal("unknown view must fail")
	}
	if _, err := eng.ViewStats("nope"); err == nil {
		t.Fatal("unknown view must fail")
	}
	ans, err := eng.Answers("v")
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Eval(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Equal(want) {
		t.Fatalf("initial answer %v, want %v", ans, want)
	}
	if !eng.Unregister("v") || eng.Unregister("v") {
		t.Fatal("Unregister must report presence exactly once")
	}
	if err := eng.Register("bad", ra.Base("Nope"), Options{}); err == nil {
		t.Fatal("registering a query over an unknown relation must fail")
	}
}

// mutateEngine commits one random update: inserts and deletes over random
// relations, tuples drawn from a small domain with occasional marked
// nulls so that collisions and null-carrying deletions are frequent.
func mutateEngine(t *testing.T, rng *rand.Rand, eng *Engine) {
	t.Helper()
	err := eng.Update(func(db *table.Database) error {
		names := db.RelationNames()
		for i, steps := 0, 1+rng.Intn(3); i < steps; i++ {
			rel := db.Relation(names[rng.Intn(len(names))])
			if rng.Intn(3) < 2 {
				tp := make(table.Tuple, rel.Arity())
				for j := range tp {
					if rng.Intn(4) == 0 {
						tp[j] = value.Null(uint64(rng.Intn(2) + 1))
					} else {
						tp[j] = value.Int(int64(rng.Intn(3)))
					}
				}
				rel.MustAdd(tp)
			} else if ts := rel.SortedTuples(); len(ts) > 0 {
				rel.Remove(ts[rng.Intn(len(ts))])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestViewDifferential is the acceptance differential: every registered
// view — the full operator corpus in ModeCertain with the planner on and
// off, a raw naïve view, and a world-enumeration (CWA) view — must be
// bit-identical to from-scratch evaluation under both planner settings
// after each of 120 randomized update steps.
func TestViewDifferential(t *testing.T) {
	eng := New(testDB(3))

	type reg struct {
		q    ra.Expr
		opts Options
	}
	views := map[string]reg{}
	for name, q := range testQueries() {
		views["cert-on/"+name] = reg{q, Options{Mode: ModeCertain, Planner: PlannerOn}}
		views["cert-off/"+name] = reg{q, Options{Mode: ModeCertain, Planner: PlannerOff}}
	}
	views["naive/ucq"] = reg{testQueries()["ucq"], Options{Mode: ModeNaive}}
	views["cwa/select"] = reg{testQueries()["select"], Options{Mode: ModeCertainCWA, MaxWorlds: 1 << 20}}
	for name, r := range views {
		if err := eng.Register(name, r.q, r.opts); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}

	check := func(step int) {
		t.Helper()
		for name, r := range views {
			got, err := eng.Answers(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, planner := range []PlannerSetting{PlannerOn, PlannerOff} {
				opts := r.opts
				opts.Planner = planner
				want, err := eng.Eval(r.q, opts)
				if err != nil {
					t.Fatalf("step %d, view %s: %v", step, name, err)
				}
				if !got.Equal(want) {
					t.Fatalf("step %d: view %s diverged from full re-evaluation (planner=%v)\ngot  %v\nwant %v",
						step, name, planner, got, want)
				}
			}
		}
	}

	check(-1)
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 120; step++ {
		mutateEngine(t, rng, eng)
		check(step)
	}

	// The operator-corpus certain views must actually have exercised the
	// incremental path; division and Δ legitimately recompute.
	for name := range testQueries() {
		if name == "division" || name == "delta" {
			continue
		}
		inc, err := eng.ViewIncremental("cert-on/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if !inc {
			t.Errorf("view cert-on/%s should be incrementally maintained", name)
		}
		st, err := eng.ViewStats("cert-on/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if st.Incremental == 0 || st.Recomputed != 0 {
			t.Errorf("view cert-on/%s stats = %+v, want only incremental refreshes", name, st)
		}
	}
	for _, name := range []string{"cert-on/division", "cert-on/delta", "cwa/select"} {
		inc, err := eng.ViewIncremental(name)
		if err != nil {
			t.Fatal(err)
		}
		if inc {
			t.Errorf("view %s should use the recompute strategy", name)
		}
	}
	// PlannerOff views recompute by design (the oracle has no network).
	if inc, _ := eng.ViewIncremental("cert-off/ucq"); inc {
		t.Error("planner-off views must use the oracle recompute strategy")
	}
}

// TestViewSkipsUnreadRelation pins the stamp-validated no-op at the engine
// level: an Update touching only a relation the view does not read must
// not refresh the view, and a view answer handed out before the update
// must stay stable (copy-on-write isolation).
func TestViewSkipsUnreadRelation(t *testing.T) {
	eng := New(testDB(5))
	q := ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}}
	if err := eng.Register("ra", q, Options{Mode: ModeCertain}); err != nil {
		t.Fatal(err)
	}
	before, err := eng.Answers("ra")
	if err != nil {
		t.Fatal(err)
	}

	if err := eng.Update(func(db *table.Database) error {
		return db.Add("S", table.NewTuple(value.Int(7), value.Int(7)))
	}); err != nil {
		t.Fatal(err)
	}
	st, err := eng.ViewStats("ra")
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 1 || st.Skipped != 1 || st.Incremental != 0 || st.Recomputed != 0 {
		t.Fatalf("stats after unread-relation update = %+v, want exactly one skip", st)
	}

	// Now a relevant update; the old answer relation must not move.
	if err := eng.Update(func(db *table.Database) error {
		return db.Add("R", table.NewTuple(value.Int(42), value.Int(42)))
	}); err != nil {
		t.Fatal(err)
	}
	after, err := eng.Answers("ra")
	if err != nil {
		t.Fatal(err)
	}
	if !after.Contains(table.NewTuple(value.Int(42))) {
		t.Fatalf("view missed the relevant update: %v", after)
	}
	if before.Contains(table.NewTuple(value.Int(42))) {
		t.Fatal("previously handed-out answer observed a later refresh")
	}
	if st, _ := eng.ViewStats("ra"); st.Updates != 2 || st.Incremental != 1 {
		t.Fatalf("stats after relevant update = %+v", st)
	}
}

// TestViewDeleteNullTuple covers the delta-capture edge case through the
// whole stack: deleting a null-carrying tuple must drop the corresponding
// raw answer and leave the certain answer's stripped form intact.
func TestViewDeleteNullTuple(t *testing.T) {
	d := table.NewDatabase(testSchema())
	d.MustAddRow("R", "1", "⊥1")
	d.MustAddRow("R", "2", "3")
	eng := New(d)
	q := ra.Project{Input: ra.Base("R"), Attrs: []string{"b"}}
	if err := eng.Register("raw", q, Options{Mode: ModeNaive}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register("cert", q, Options{Mode: ModeCertain}); err != nil {
		t.Fatal(err)
	}
	nullB := table.NewTuple(value.Null(1))
	if ans, _ := eng.Answers("raw"); !ans.Contains(nullB) {
		t.Fatal("raw view must contain the null before the delete")
	}
	if err := eng.Update(func(db *table.Database) error {
		if !db.Relation("R").Remove(table.MustParseTuple("1", "⊥1")) {
			return fmt.Errorf("tuple missing")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ans, _ := eng.Answers("raw"); ans.Contains(nullB) || ans.Len() != 1 {
		t.Fatalf("raw view after null delete = %v", ans)
	}
	if ans, _ := eng.Answers("cert"); ans.Len() != 1 || !ans.Contains(table.MustParseTuple("3")) {
		t.Fatalf("certain view after null delete = %v", ans)
	}
}

// TestWorldModeViewRefreshesOnUnreadRelation is the regression test for
// the enumeration-domain dependency: a CWA view's answer can change when a
// constant is inserted into a relation the query never reads (the domain
// is built from the whole database), so world-mode views must refresh on
// every net-nonempty update instead of skipping unread relations.
func TestWorldModeViewRefreshesOnUnreadRelation(t *testing.T) {
	d := table.NewDatabase(testSchema())
	// R holds a single all-null tuple; with adom = {⊥1,⊥2} and one fresh
	// constant, every world maps both nulls to the same constant, so
	// σ_{a=b}(R) is certainly nonempty — until a second constant exists.
	d.MustAddRow("R", "⊥1", "⊥2")
	eng := New(d)
	q := ra.Select{Input: ra.Base("R"), Pred: ra.Eq(ra.Attr("a"), ra.Attr("b"))}
	opts := Options{Mode: ModeCertainCWA, MaxWorlds: 1 << 20}
	if err := eng.Register("cwa", q, opts); err != nil {
		t.Fatal(err)
	}
	if ans, _ := eng.Answers("cwa"); ans.Len() != 1 {
		t.Fatalf("initial CWA answer = %v, want one tuple", ans)
	}

	// Insert a constant into S (unread by q): the enumeration domain now
	// has two constants, worlds with ⊥1 ≠ ⊥2 appear, the answer empties.
	if err := eng.Update(func(db *table.Database) error {
		return db.Add("S", table.NewTuple(value.Int(99), value.Int(99)))
	}); err != nil {
		t.Fatal(err)
	}
	got, err := eng.Answers("cwa")
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Eval(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("CWA view diverged after unread-relation insert:\ngot  %v\nwant %v", got, want)
	}
	if got.Len() != 0 {
		t.Fatalf("CWA answer should empty out once a second constant exists, got %v", got)
	}
	if st, _ := eng.ViewStats("cwa"); st.Skipped != 0 || st.Recomputed != 1 {
		t.Fatalf("stats = %+v, want the update recomputed, not skipped", st)
	}
}

// TestUpdatePanicDetachesTracker pins panic safety: a panicking Update
// callback must still detach the delta tracker and refresh the views with
// whatever was committed, leaving the engine fully usable.
func TestUpdatePanicDetachesTracker(t *testing.T) {
	eng := New(testDB(9))
	q := ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}}
	if err := eng.Register("ra", q, Options{Mode: ModeCertain}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic should propagate out of Update")
			}
		}()
		_ = eng.Update(func(db *table.Database) error {
			db.MustAdd("R", table.NewTuple(value.Int(77), value.Int(77)))
			panic("boom")
		})
	}()
	// The partial mutation must have reached the view...
	if ans, _ := eng.Answers("ra"); !ans.Contains(table.NewTuple(value.Int(77))) {
		t.Fatalf("view missed the pre-panic mutation: %v", ans)
	}
	// ...and the engine must keep working (tracker detached).
	if err := eng.Update(func(db *table.Database) error {
		return db.Add("R", table.NewTuple(value.Int(78), value.Int(78)))
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := eng.Answers("ra")
	want, err := eng.Eval(q, Options{Mode: ModeCertain})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("view diverged after panic recovery:\ngot  %v\nwant %v", got, want)
	}
}
