package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/value"
)

// parallelTestDB builds a database large enough to clear the plan layer's
// parallel cutoff, so Workers > 1 really exercises the morsel and
// partitioned-join paths at the engine level.  nullIDs marked nulls are
// sprinkled in (reused, so world enumeration stays bounded) and values are
// drawn from [0, domain).
func parallelTestDB(tuples, domain, nullIDs int, seed int64) *table.Database {
	rnd := rand.New(rand.NewSource(seed))
	d := table.NewDatabase(testSchema())
	for _, name := range []string{"R", "S", "T"} {
		for i := 0; i < tuples; i++ {
			t := make(table.Tuple, 2)
			for j := range t {
				if nullIDs > 0 && rnd.Intn(60) == 0 {
					t[j] = value.Null(uint64(rnd.Intn(nullIDs) + 1))
				} else {
					t[j] = value.Int(int64(rnd.Intn(domain)))
				}
			}
			d.MustAdd(name, t)
		}
	}
	return d
}

// TestEngineWorkersBitIdentical pins the engine's parallel paths against
// the serial oracle: for every query, mode and planner setting, Workers: 4
// must produce exactly the fingerprint Workers: 1 does.
func TestEngineWorkersBitIdentical(t *testing.T) {
	// Large relations with a wide domain: the one-shot modes go through
	// morsel-parallel plan evaluation (partitioned hash joins).
	big := New(parallelTestDB(1200, 40, 3, 1))
	// Smaller relations with a narrow domain: the world-enumeration modes
	// stay within a few dozen worlds while the per-world pool runs.
	med := New(parallelTestDB(250, 3, 2, 2))

	queries := map[string]ra.Expr{
		"base":   ra.Base("R"),
		"select": ra.Select{Input: ra.Base("R"), Pred: ra.Neq(ra.Attr("a"), ra.Attr("b"))},
		"join":   ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}},
		"diff":   ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")},
		"union": ra.Union{
			Left:  ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a"}},
			Right: ra.Project{Input: ra.Base("T"), Attrs: []string{"a"}},
		},
	}

	check := func(eng *Engine, mode Mode, extra Options) {
		t.Helper()
		for name, q := range queries {
			for _, planner := range []PlannerSetting{PlannerOn, PlannerOff} {
				opts := extra
				opts.Mode = mode
				opts.Planner = planner
				opts.Workers = 1
				want, err := eng.Eval(q, opts)
				if err != nil {
					t.Fatalf("%s/%v/planner=%v workers=1: %v", name, mode, planner, err)
				}
				for _, workers := range []int{2, 4} {
					opts.Workers = workers
					got, err := eng.Eval(q, opts)
					if err != nil {
						t.Fatalf("%s/%v/planner=%v workers=%d: %v", name, mode, planner, workers, err)
					}
					if fp(got) != fp(want) {
						t.Fatalf("%s/%v/planner=%v: workers=%d differs from serial", name, mode, planner, workers)
					}
				}
			}
		}
	}

	check(big, ModeCertain, Options{})
	check(big, ModeNaive, Options{})
	worldOpts := Options{ExtraFresh: 1, MaxWorlds: 1 << 18}
	check(med, ModeCertainCWA, worldOpts)
	check(med, ModeCertainOWA, worldOpts)

	// Boolean certainty through the same worker knob.
	q := ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}}
	for _, planner := range []PlannerSetting{PlannerOn, PlannerOff} {
		opts := worldOpts
		opts.Planner = planner
		opts.Workers = 1
		want, err := med.EvalBool(q, opts)
		if err != nil {
			t.Fatalf("EvalBool serial: %v", err)
		}
		opts.Workers = 4
		got, err := med.EvalBool(q, opts)
		if err != nil {
			t.Fatalf("EvalBool workers=4: %v", err)
		}
		if got != want {
			t.Fatalf("EvalBool planner=%v: workers=4 got %v, serial %v", planner, got, want)
		}
	}
}

// TestConcurrentParallelQueriesWithWriter stresses morsel-parallel
// evaluation under concurrent commits: readers take snapshots and require
// the Workers: 4 answer to match the serial answer on the same snapshot,
// while a writer keeps mutating the live database.  Run under -race this
// checks the per-partition index caches, the shared prepare-phase
// materializations and the chunk pools for data races.
func TestConcurrentParallelQueriesWithWriter(t *testing.T) {
	eng := New(parallelTestDB(600, 30, 2, 7))
	queries := []ra.Expr{
		ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}},
		ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")},
		ra.Select{Input: ra.Base("R"), Pred: ra.Neq(ra.Attr("a"), ra.Attr("b"))},
	}
	modes := []Mode{ModeCertain, ModeNaive}

	const (
		writes         = 60
		readers        = 4
		readsPerReader = 25
	)
	var wg sync.WaitGroup
	wg.Add(1 + readers)
	errs := make(chan error, readers+1)

	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			i := i
			err := eng.Update(func(db *table.Database) error {
				switch i % 3 {
				case 0:
					return db.Add("R", table.NewTuple(value.Int(int64(1000+i)), value.Int(int64(i%30))))
				case 1:
					return db.Add("S", table.NewTuple(value.Int(int64(i%30)), value.Int(int64(1000+i))))
				default:
					ts := db.Relation("T").SortedTuples()
					if len(ts) > 0 {
						db.Relation("T").Remove(ts[i%len(ts)])
					}
					return nil
				}
			})
			if err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		r := r
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				snap := eng.Snapshot()
				q := queries[(r+i)%len(queries)]
				opts := Options{Mode: modes[i%len(modes)]}
				if (r+i)%4 == 0 {
					opts.Planner = PlannerOff
				}
				opts.Workers = 4
				par, err := snap.Eval(q, opts)
				if err != nil {
					errs <- fmt.Errorf("reader %d parallel: %w", r, err)
					return
				}
				opts.Workers = 1
				ser, err := snap.Eval(q, opts)
				if err != nil {
					errs <- fmt.Errorf("reader %d serial: %w", r, err)
					return
				}
				if fp(par) != fp(ser) {
					errs <- fmt.Errorf("reader %d: parallel answer differs from serial on one snapshot", r)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
