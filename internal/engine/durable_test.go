package engine

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/version"
)

// commitSteps applies a mutation stream in random-sized batches, one
// commit per batch, and returns the commit ids.
func commitSteps(t *testing.T, eng *Engine, stream []histStep, rng *rand.Rand, label string) []version.CommitID {
	t.Helper()
	var ids []version.CommitID
	i := 0
	for i < len(stream) {
		n := 1 + rng.Intn(4)
		if i+n > len(stream) {
			n = len(stream) - i
		}
		batch := stream[i : i+n]
		if err := eng.Update(func(db *table.Database) error {
			for _, s := range batch {
				if s.add {
					db.MustAdd(s.rel, s.t)
				} else {
					db.Relation(s.rel).Remove(s.t)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		id, err := eng.Commit(fmt.Sprintf("%s-%d", label, i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		i += n
	}
	return ids
}

// TestDurablePersistOpenDifferential is the acceptance pin of the durable
// subsystem: a database written with Persist (historical backfill) plus
// live durable commits, branches and a merge, reopened with Open, yields
// bit-identical AsOf states at every commit and bit-identical certain
// answers at the head across modes × planner settings × worker counts.
func TestDurablePersistOpenDifferential(t *testing.T) {
	for _, checkpointEvery := range []int{-1, 2, 16} {
		checkpointEvery := checkpointEvery
		t.Run(fmt.Sprintf("ckpt=%d", checkpointEvery), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(11 + checkpointEvery)))
			eng := New(table.NewDatabase(testSchema()))
			if _, err := eng.EnableHistory(HistoryOptions{CheckpointEvery: checkpointEvery}); err != nil {
				t.Fatal(err)
			}
			// Pre-Persist history: exercised as backfill.
			ids := commitSteps(t, eng, randomHistStream(rng, 24), rng, "pre")
			dir := t.TempDir()
			if err := eng.Persist(dir); err != nil {
				t.Fatalf("Persist: %v", err)
			}
			if !eng.Durable() {
				t.Fatalf("Durable() = false after Persist")
			}
			// Post-Persist history: exercised as live durable appends.
			ids = append(ids, commitSteps(t, eng, randomHistStream(rng, 16), rng, "post")...)
			// Branch, diverge, and merge back.
			if err := eng.Branch("dev"); err != nil {
				t.Fatal(err)
			}
			if err := eng.Checkout("dev"); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, commitSteps(t, eng, randomHistStream(rng, 6), rng, "dev")...)
			if err := eng.Checkout("main"); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, commitSteps(t, eng, randomHistStream(rng, 6), rng, "div")...)
			res, err := eng.Merge("dev", "merge dev")
			if err != nil {
				t.Fatalf("Merge: %v", err)
			}
			ids = append(ids, res.Commit)

			wantBranches, err := eng.Branches()
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			re, err := Open(dir)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer re.Close()

			gotBranches, err := re.Branches()
			if err != nil {
				t.Fatal(err)
			}
			if len(gotBranches) != len(wantBranches) {
				t.Fatalf("branches differ: %v vs %v", gotBranches, wantBranches)
			}
			for name, id := range wantBranches {
				if gotBranches[name] != id {
					t.Fatalf("branch %s: %s vs %s", name, gotBranches[name], id)
				}
			}
			wb, wid, err := eng.Head()
			if err != nil {
				t.Fatal(err)
			}
			gb, gid, err := re.Head()
			if err != nil {
				t.Fatal(err)
			}
			if gb != wb || gid != wid {
				t.Fatalf("head differs: %s@%s vs %s@%s", gb, gid, wb, wid)
			}

			// Every commit's reconstructed state must be bit-identical.
			for _, id := range ids {
				want, err := eng.AsOf(id)
				if err != nil {
					t.Fatalf("original AsOf(%s): %v", id, err)
				}
				got, err := re.AsOf(id)
				if err != nil {
					t.Fatalf("reopened AsOf(%s): %v", id, err)
				}
				if got.Database().CanonicalKey() != want.Database().CanonicalKey() {
					t.Fatalf("ckpt=%d: AsOf(%s) state differs after reopen", checkpointEvery, id)
				}
			}

			// Head query differential: modes × planner × workers.
			for qname, q := range testQueries() {
				for _, mode := range []Mode{ModeCertain, ModeNaive} {
					for _, planner := range []PlannerSetting{PlannerOn, PlannerOff} {
						for _, workers := range []int{1, 2, 4} {
							opts := Options{Mode: mode, Planner: planner, Workers: workers}
							want, werr := eng.Eval(q, opts)
							got, gerr := re.Eval(q, opts)
							if (gerr == nil) != (werr == nil) {
								t.Fatalf("%s mode=%v planner=%v workers=%d: err %v vs %v",
									qname, mode, planner, workers, gerr, werr)
							}
							if gerr == nil && fp(got) != fp(want) {
								t.Fatalf("%s mode=%v planner=%v workers=%d: answers differ after reopen",
									qname, mode, planner, workers)
							}
						}
					}
				}
				// World enumeration spot check (exponential: small queries only).
				if qname == "base" || qname == "select" {
					opts := Options{Mode: ModeCertainCWA, ExtraFresh: 1, MaxWorlds: 1 << 13}
					want, werr := eng.Eval(q, opts)
					got, gerr := re.Eval(q, opts)
					if (gerr == nil) != (werr == nil) || (gerr == nil && fp(got) != fp(want)) {
						t.Fatalf("%s certain-cwa differs after reopen (%v / %v)", qname, gerr, werr)
					}
				}
			}
		})
	}
}

// frameOffsets returns the byte offset of every frame start in a log.
func frameOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	for off := 0; off+8 <= len(data); {
		offs = append(offs, off)
		n := binary.LittleEndian.Uint32(data[off : off+4])
		off += 8 + int(n)
		if off > len(data) {
			t.Fatalf("log ends inside a frame (offset %d of %d)", off, len(data))
		}
	}
	return offs
}

func copyStoreDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy store dir: %v", err)
	}
}

// TestDurableCrashRecoveryTornLog simulates a crash mid-commit at every
// byte offset of the final log record: Open must truncate the torn tail
// and recover to the previous commit, for every checkpoint policy, and
// the recovered store must accept new commits.
func TestDurableCrashRecoveryTornLog(t *testing.T) {
	for _, checkpointEvery := range []int{-1, 1, 2, 16} {
		checkpointEvery := checkpointEvery
		t.Run(fmt.Sprintf("ckpt=%d", checkpointEvery), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(31 + checkpointEvery)))
			eng := New(table.NewDatabase(testSchema()))
			if _, err := eng.EnableHistory(HistoryOptions{CheckpointEvery: checkpointEvery}); err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if err := eng.Persist(dir); err != nil {
				t.Fatalf("Persist: %v", err)
			}
			ids := commitSteps(t, eng, randomHistStream(rng, 15), rng, "c")
			if len(ids) < 2 {
				t.Fatalf("need at least 2 commits, got %d", len(ids))
			}
			prev := ids[len(ids)-2]
			prevState, err := eng.AsOf(prev)
			if err != nil {
				t.Fatal(err)
			}
			prevKey := prevState.Database().CanonicalKey()
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}

			data, err := os.ReadFile(filepath.Join(dir, "log.bin"))
			if err != nil {
				t.Fatal(err)
			}
			offs := frameOffsets(t, data)
			lastStart := offs[len(offs)-1]
			// Every truncation point inside the final record, including
			// dropping it whole.
			for cut := lastStart; cut < len(data); cut++ {
				cdir := filepath.Join(t.TempDir(), "crashed")
				copyStoreDir(t, dir, cdir)
				if err := os.Truncate(filepath.Join(cdir, "log.bin"), int64(cut)); err != nil {
					t.Fatal(err)
				}
				re, err := Open(cdir)
				if err != nil {
					t.Fatalf("cut %d: Open: %v", cut, err)
				}
				_, head, err := re.Head()
				if err != nil {
					re.Close()
					t.Fatalf("cut %d: Head: %v", cut, err)
				}
				if head != prev {
					re.Close()
					t.Fatalf("cut %d: recovered head %s, want previous commit %s", cut, head, prev)
				}
				re.Close()
			}

			// One full recovery check: previous state is bit-identical and
			// the store accepts a new durable commit.
			cdir := filepath.Join(t.TempDir(), "crashed-full")
			copyStoreDir(t, dir, cdir)
			if err := os.Truncate(filepath.Join(cdir, "log.bin"), int64(lastStart+3)); err != nil {
				t.Fatal(err)
			}
			re, err := Open(cdir)
			if err != nil {
				t.Fatalf("Open after torn tail: %v", err)
			}
			defer re.Close()
			snap, err := re.AsOf(prev)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Database().CanonicalKey() != prevKey {
				t.Fatalf("recovered AsOf(%s) differs from pre-crash state", prev)
			}
			if err := re.Update(func(db *table.Database) error {
				db.MustAdd("R", table.NewTuple(value.Int(99), value.Int(99)))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			id, err := re.Commit("after recovery")
			if err != nil {
				t.Fatalf("commit after recovery: %v", err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2, err := Open(cdir)
			if err != nil {
				t.Fatalf("reopen after recovery commit: %v", err)
			}
			defer re2.Close()
			_, head, err := re2.Head()
			if err != nil {
				t.Fatal(err)
			}
			if head != id {
				t.Fatalf("post-recovery commit not durable: head %s, want %s", head, id)
			}
		})
	}
}

// TestDurableFlush checks Flush: with checkpoints off (root only), a
// flushed head reopens without replaying the whole chain from the root —
// and, observably, the checkpoint makes reopen state bit-identical.
func TestDurableFlush(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	eng := New(table.NewDatabase(testSchema()))
	if _, err := eng.EnableHistory(HistoryOptions{CheckpointEvery: -1}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := eng.Persist(dir); err != nil {
		t.Fatal(err)
	}
	commitSteps(t, eng, randomHistStream(rng, 12), rng, "c")
	if err := eng.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	headKey := eng.Snapshot().Database().CanonicalKey()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if got := re.Snapshot().Database().CanonicalKey(); got != headKey {
		t.Fatalf("flushed head state differs after reopen")
	}
}

// TestPersistWithoutHistory: Persist on a plain engine enables history
// implicitly and the state survives a reopen.
func TestPersistWithoutHistory(t *testing.T) {
	eng := New(testDB(5))
	dir := t.TempDir()
	if err := eng.Persist(dir); err != nil {
		t.Fatal(err)
	}
	key := eng.Snapshot().Database().CanonicalKey()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Snapshot().Database().CanonicalKey(); got != key {
		t.Fatalf("state differs after reopen")
	}
	if !re.HistoryEnabled() {
		t.Fatalf("history not enabled after Open")
	}
}

// TestPersistTwiceFails: a second Persist (or onto an existing store) is
// an error, not silent corruption.
func TestPersistTwiceFails(t *testing.T) {
	eng := New(testDB(6))
	dir := t.TempDir()
	if err := eng.Persist(dir); err != nil {
		t.Fatal(err)
	}
	if err := eng.Persist(t.TempDir()); err == nil {
		t.Fatalf("second Persist succeeded")
	}
	eng2 := New(testDB(7))
	if err := eng2.Persist(dir); err == nil {
		t.Fatalf("Persist onto an existing store succeeded")
	}
	eng.Close()
}

// TestEngineMemBudgetBitIdentical pins the facade's MemBudget knob: a
// join evaluated under a budget far smaller than its build side (forcing
// the Grace spill path) returns bit-identical answers to the unbounded
// configuration, in both certain and naive modes.
func TestEngineMemBudgetBitIdentical(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	eng := New(table.NewDatabase(testSchema()))
	if err := eng.Update(func(db *table.Database) error {
		for i := 0; i < 400; i++ {
			db.MustAdd("R", table.NewTuple(value.Int(int64(i%50)), value.Int(int64(rnd.Intn(40)))))
			db.MustAdd("S", table.NewTuple(value.Int(int64(rnd.Intn(40))), value.String(fmt.Sprintf("v%d", i%90))))
			if i%9 == 0 {
				db.MustAdd("S", table.NewTuple(value.Null(uint64(i%4+1)), value.String("n")))
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	q := ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}}
	for _, mode := range []Mode{ModeCertain, ModeNaive} {
		want, err := eng.Eval(q, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Eval(q, Options{Mode: mode, MemBudget: 64})
		if err != nil {
			t.Fatal(err)
		}
		if fp(got) != fp(want) {
			t.Fatalf("mode %v: budgeted answer differs: %d vs %d tuples", mode, got.Len(), want.Len())
		}
	}
}

// TestStatsEncodingChurnGuard is the satellite regression test of the
// dictionary churn-guard surface: Stats must expose sidecar builds, and
// a mutate/encode thrash pattern must surface declines with the guard
// reported as declining.
func TestStatsEncodingChurnGuard(t *testing.T) {
	eng := New(testDB(9))
	// A bare scan materializes the relation as-is; a projected join is
	// coded-eligible and builds the sidecars of the relations it reads.
	q := ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}}
	opts := Options{Mode: ModeCertain, Coded: CodedOn, Workers: 1}
	if _, err := eng.Eval(q, opts); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	es, ok := st.Encoding["R"]
	if !ok {
		t.Fatalf("Stats().Encoding has no entry for R after a coded eval: %+v", st.Encoding)
	}
	if es.Builds == 0 {
		t.Fatalf("no sidecar builds recorded: %+v", es)
	}
	if es.Declined {
		t.Fatalf("guard declining after a single build: %+v", es)
	}
	// Thrash: mutate + re-encode until the churn guard starts declining.
	declined := false
	for i := 0; i < 40 && !declined; i++ {
		if err := eng.Update(func(db *table.Database) error {
			db.MustAdd("R", table.NewTuple(value.Int(int64(100+i)), value.Int(int64(i))))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Eval(q, opts); err != nil {
			t.Fatal(err)
		}
		declined = eng.Stats().Encoding["R"].Declined
	}
	// One more mutation + coded request while the guard is declining: the
	// rebuild attempt is turned away and recorded as a decline.
	if err := eng.Update(func(db *table.Database) error {
		db.MustAdd("R", table.NewTuple(value.Int(999), value.Int(999)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Eval(q, opts); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	es = st.Encoding["R"]
	if !es.Declined || es.Declines == 0 {
		t.Fatalf("churn guard never started declining under thrash: %+v", es)
	}
	if es.Builds < 2 {
		t.Fatalf("expected rebuilds before the guard kicked in: %+v", es)
	}
}
