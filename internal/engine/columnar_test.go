package engine

import (
	"testing"

	"incdata/internal/ra"
)

// TestEngineColumnarBitIdentical crosses the columnar knob with every
// other evaluation dimension at the engine level: for each query, mode
// certain/naive, planner on/off and worker budget 1/2/4, the vectorized
// columnar path must produce exactly the fingerprint the per-tuple row
// path does.
func TestEngineColumnarBitIdentical(t *testing.T) {
	eng := New(parallelTestDB(1200, 40, 3, 9))
	queries := map[string]ra.Expr{
		"base":   ra.Base("R"),
		"select": ra.Select{Input: ra.Base("R"), Pred: ra.Neq(ra.Attr("a"), ra.Attr("b"))},
		"join":   ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}},
		"select-join": ra.Select{
			Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")},
			Pred:  ra.Neq(ra.Attr("a"), ra.Attr("c")),
		},
		"diff": ra.Diff{Left: ra.Base("R"), Right: ra.Base("T")},
		"project-diff": ra.Diff{
			Left:  ra.Project{Input: ra.Base("R"), Attrs: []string{"a"}},
			Right: ra.Project{Input: ra.Base("T"), Attrs: []string{"a"}},
		},
		"union": ra.Union{
			Left:  ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a"}},
			Right: ra.Project{Input: ra.Base("T"), Attrs: []string{"a"}},
		},
	}
	for name, q := range queries {
		for _, mode := range []Mode{ModeCertain, ModeNaive} {
			for _, planner := range []PlannerSetting{PlannerOn, PlannerOff} {
				for _, workers := range []int{1, 2, 4} {
					opts := Options{Mode: mode, Planner: planner, Workers: workers, Columnar: ColumnarOff}
					want, err := eng.Eval(q, opts)
					if err != nil {
						t.Fatalf("%s/%v/planner=%v/workers=%d row: %v", name, mode, planner, workers, err)
					}
					opts.Columnar = ColumnarOn
					got, err := eng.Eval(q, opts)
					if err != nil {
						t.Fatalf("%s/%v/planner=%v/workers=%d columnar: %v", name, mode, planner, workers, err)
					}
					if fp(got) != fp(want) {
						t.Fatalf("%s/%v/planner=%v/workers=%d: columnar answer differs from row path",
							name, mode, planner, workers)
					}
				}
			}
		}
	}
}
