package engine

import (
	"fmt"
	"sort"

	"incdata/internal/inc"
	"incdata/internal/ra"
	"incdata/internal/table"
)

// Maintained views: Register materializes a query's answer once and the
// engine keeps it current across Updates from the captured per-relation
// tuple deltas — see package inc for the maintenance machinery.  All view
// state is guarded by the engine lock: registration, refresh (inside
// Update) and Answers are serialized with writers, and the relations
// Answers returns are copy-on-write clones that remain valid while the
// engine moves on.

// Register compiles, materializes and maintains the query as a named view
// evaluated under opts.  ModeCertain and ModeNaive views with the planner
// enabled are maintained incrementally through a delta-propagation network
// when the query's shape allows it; every other configuration —
// PlannerOff, division, the Δ operator — falls back to full
// re-evaluation, skipping updates that touch no relation the query reads.
// The world-enumeration modes also recompute, but refresh on every
// net-nonempty update: their enumeration domain is built from the whole
// database's constants, so an insert into an unread relation can change
// the answer.  The initial materialization evaluates against the current
// database state.
func (e *Engine) Register(name string, q ra.Expr, opts Options) error {
	if name == "" {
		return fmt.Errorf("engine: view name must be non-empty")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.views[name]; dup {
		return fmt.Errorf("engine: view %q is already registered", name)
	}
	v, err := e.buildViewLocked(name, q, opts)
	if err != nil {
		return err
	}
	if e.views == nil {
		e.views = map[string]*inc.View{}
		e.viewRegs = map[string]viewReg{}
	}
	e.views[name] = v
	e.viewRegs[name] = viewReg{q: q, opts: opts}
	return nil
}

// viewReg remembers how a view was registered so Checkout and Merge can
// rebuild it against a new head state.
type viewReg struct {
	q    ra.Expr
	opts Options
}

// buildViewLocked compiles and materializes a view against the current
// live database; the caller holds e.mu.
func (e *Engine) buildViewLocked(name string, q ra.Expr, opts Options) (*inc.View, error) {
	ev := e.evaluator(opts)
	incremental := opts.Mode == ModeCertain || opts.Mode == ModeNaive
	cfg := inc.Config{
		CompleteOnly: opts.Mode == ModeCertain,
		Recompute: func(db *table.Database) (*table.Relation, error) {
			return evalMode(ev, q, db, opts)
		},
		ForceRecompute: !incremental || opts.Planner == PlannerOff,
		WholeDB:        !incremental,
	}
	v, err := inc.New(name, q, e.db, cfg)
	if err != nil {
		return nil, fmt.Errorf("engine: register %q: %w", name, err)
	}
	return v, nil
}

// rebuildViewsLocked re-materializes every registered view against the
// current live database (after Checkout or Merge swapped it).  The views
// stay registered under their names; their refresh counters restart.  The
// caller holds e.mu.
func (e *Engine) rebuildViewsLocked() error {
	var firstErr error
	for _, name := range e.viewNamesLocked() {
		reg := e.viewRegs[name]
		v, err := e.buildViewLocked(name, reg.q, reg.opts)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		e.views[name] = v
	}
	return firstErr
}

// Unregister drops a maintained view, reporting whether it existed.
func (e *Engine) Unregister(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.views[name]
	delete(e.views, name)
	delete(e.viewRegs, name)
	return ok
}

// Answers returns the maintained answer of a registered view as of the
// last committed Update.  The returned relation is a copy-on-write clone:
// the caller may keep reading it while the engine refreshes the view.
// After a failed refresh (a recompute error surfaced by Update) the view
// is stale and Answers returns that failure until a later Update
// refreshes it successfully.
func (e *Engine) Answers(name string) (*table.Relation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.views[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", name)
	}
	return v.Answer()
}

// Views returns the registered view names in sorted order.
func (e *Engine) Views() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.viewNamesLocked()
}

// ViewStats reports a registered view's refresh counters: how many updates
// it saw, how many were skipped as irrelevant, and how much delta volume
// the incremental refreshes moved.
func (e *Engine) ViewStats(name string) (inc.Stats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.views[name]
	if !ok {
		return inc.Stats{}, fmt.Errorf("engine: unknown view %q", name)
	}
	return v.Stats(), nil
}

// ViewIncremental reports whether a registered view is maintained by the
// delta network (as opposed to stamp-gated recomputation).
func (e *Engine) ViewIncremental(name string) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.views[name]
	if !ok {
		return false, fmt.Errorf("engine: unknown view %q", name)
	}
	return v.Incremental(), nil
}

// viewNamesLocked returns the view names sorted; the caller holds e.mu.
func (e *Engine) viewNamesLocked() []string {
	names := make([]string, 0, len(e.views))
	for n := range e.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
