package engine

// Durable persistence on the engine facade: Persist writes the engine's
// full version history into an internal/store directory and keeps the
// engine attached to it, Open rebuilds an engine from such a directory,
// and Flush forces a materialized checkpoint of the committed head.
//
// While attached to a store, every Commit (and merge commit, branch
// creation, checkout and fast-forward) appends a log record in the same
// critical section that updates the in-memory DAG, and commits falling on
// the checkpoint interval also write a content-addressed manifest of the
// post-commit state — the durable mirror of the in-memory checkpoint
// policy, so Open recovers any commit by nearest-checkpoint + delta
// replay exactly as AsOf does in memory.
//
// Uncommitted changes (the pending change set) are volatile by design:
// durability is a property of commits.  A crash loses at most the
// uncommitted tail; recovery lands on the last fully appended commit.

import (
	"fmt"
	"sort"

	"incdata/internal/store"
	"incdata/internal/table"
	"incdata/internal/value"
	"incdata/internal/version"
)

// Durable reports whether the engine is attached to a store directory.
func (e *Engine) Durable() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st != nil
}

// Persist writes the engine's state and full history into a fresh store
// directory and attaches the engine to it: from now on commits are
// durable.  History is enabled first (with default options) if it was
// not already.  Pending uncommitted changes stay in memory and become
// durable with the next Commit.
func (e *Engine) Persist(dir string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.st != nil {
		return fmt.Errorf("engine: already persisted to %s", e.st.Dir())
	}
	if e.hist == nil {
		hist, _ := version.New(e.db, "main", "init", version.Options{})
		e.hist = hist
		e.branch = "main"
		e.pending = table.NewChangeSet()
	}
	st, err := store.Create(dir)
	if err != nil {
		return err
	}
	ex := e.hist.Export()
	root := ex.Commits[0]
	rootState, err := e.hist.AsOf(root.ID)
	if err != nil {
		return err
	}
	rootManifest, err := st.WriteManifest(rootState)
	if err != nil {
		return err
	}
	if err := st.Append(&store.Record{
		Type:            store.RecRoot,
		Branch:          e.branch,
		ID:              string(root.ID),
		Message:         root.Message,
		Manifest:        rootManifest,
		CheckpointEvery: ex.Opts.CheckpointEvery,
	}); err != nil {
		return err
	}
	ckpt := make(map[version.CommitID]bool, len(ex.Checkpoints))
	for _, id := range ex.Checkpoints {
		ckpt[id] = true
	}
	for _, c := range ex.Commits[1:] {
		manifest := ""
		if ckpt[c.ID] {
			state, err := e.hist.AsOf(c.ID)
			if err != nil {
				return err
			}
			if manifest, err = st.WriteManifest(state); err != nil {
				return err
			}
		}
		// Historical backfill: branch refs are replayed separately below,
		// so these commit records advance no ref.
		if err := st.AppendCommit(c, "", manifest); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(ex.Branches))
	for name := range ex.Branches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := st.Append(&store.Record{Type: store.RecRef, Branch: name, ID: string(ex.Branches[name])}); err != nil {
			return err
		}
	}
	if err := st.Append(&store.Record{Type: store.RecHead, Branch: e.branch}); err != nil {
		return err
	}
	if err := st.Sync(); err != nil {
		return err
	}
	e.st = st
	e.checkpointEvery = ex.Opts.CheckpointEvery
	return nil
}

// Open rebuilds an engine from a store directory: the log's valid prefix
// is replayed (a torn final record from a crash mid-commit is truncated),
// the version DAG restored with every commit id re-verified, and the live
// database set to the checked-out branch's head.  Checkpoint states load
// their relations lazily, chunk by chunk on first access, so Open costs
// O(log + manifests), not O(data).
func Open(dir string) (*Engine, error) {
	st, rec, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Engine, error) {
		st.Close()
		return nil, err
	}
	checkpoints := make(map[version.CommitID]*table.Database, len(rec.Checkpoints))
	for id, manifest := range rec.Checkpoints {
		db, err := st.LoadDatabase(manifest)
		if err != nil {
			return fail(err)
		}
		checkpoints[id] = db
	}
	hist, err := version.Restore(rec.Commits, rec.Branches, checkpoints, rec.Opts)
	if err != nil {
		return fail(err)
	}
	// Replayed deltas may mention null ids this process has never issued;
	// manifest-resident nulls are handled by LoadDatabase.
	value.EnsureFreshNullsAfter(rec.MaxNull)
	head, err := hist.Head(rec.Head)
	if err != nil {
		return fail(err)
	}
	state, err := hist.AsOf(head)
	if err != nil {
		return fail(err)
	}
	e := New(state.Clone())
	e.hist = hist
	e.branch = rec.Head
	e.pending = table.NewChangeSet()
	e.st = st
	e.checkpointEvery = rec.Opts.CheckpointEvery
	if e.checkpointEvery == 0 {
		e.checkpointEvery = version.DefaultCheckpointEvery
	}
	return e, nil
}

// Flush writes a materialized checkpoint of the committed head state to
// the store, so a subsequent Open recovers it without replaying deltas.
// Pending uncommitted changes are not flushed — durability is a property
// of commits.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.st == nil {
		return fmt.Errorf("engine: not persisted (call Persist first)")
	}
	head, err := e.hist.Head(e.branch)
	if err != nil {
		return err
	}
	state, err := e.hist.AsOf(head)
	if err != nil {
		return err
	}
	manifest, err := e.st.WriteManifest(state)
	if err != nil {
		return err
	}
	if err := e.st.Append(&store.Record{Type: store.RecCheckpoint, ID: string(head), Manifest: manifest}); err != nil {
		return err
	}
	return e.st.Sync()
}

// Close detaches and closes the underlying store, if any.  The engine
// remains usable in memory; further commits are no longer durable.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.st == nil {
		return nil
	}
	err := e.st.Close()
	e.st = nil
	return err
}

// persistCommitLocked appends the log record of a just-created commit,
// advancing the checked-out branch's durable ref, and writes a
// checkpoint manifest when the commit falls on the checkpoint interval.
// The caller holds e.mu and has already advanced the in-memory DAG and
// set e.db to the post-commit state.  State is written before the record
// (see the store's write protocol), so a crash between the two leaves
// orphaned chunks, never a dangling reference.
func (e *Engine) persistCommitLocked(id version.CommitID) error {
	if e.st == nil {
		return nil
	}
	c, err := e.hist.Lookup(id)
	if err != nil {
		return err
	}
	if e.st.HasCommit(string(id)) {
		// Content-addressed dedup hit: the commit's record is already in
		// the log (committed on another branch); only the ref moves.
		return e.st.Append(&store.Record{Type: store.RecRef, Branch: e.branch, ID: string(id)})
	}
	manifest := ""
	if e.checkpointEvery > 0 && c.Depth()%e.checkpointEvery == 0 {
		if manifest, err = e.st.WriteManifest(e.db); err != nil {
			return err
		}
	}
	return e.st.AppendCommit(version.ExportedCommit{
		ID:      c.ID,
		Parents: c.Parents,
		Message: c.Message,
		Delta:   c.Delta,
	}, e.branch, manifest)
}

// persistErr decorates a post-commit persistence failure: the in-memory
// commit succeeded, the durable record did not.
func persistErr(id version.CommitID, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("engine: commit %s applied in memory but not persisted: %w", id, err)
}
