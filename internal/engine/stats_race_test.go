package engine

import (
	"fmt"
	"sync"
	"testing"

	"incdata/internal/ra"
	"incdata/internal/schema"
	"incdata/internal/table"
)

// TestStatsCoherentUnderConcurrency is the stress test for the serving
// layer's hot read path: many goroutines hammer Stats, Answers, ViewStats
// and Views while a writer keeps updating, committing (with delta drains,
// as the server's COMMIT does) and re-registering views.  Run under -race
// it audits the counters and the per-view stats gathering for data races;
// in any mode it checks that Stats' view map is coherent — a view present
// in the report was genuinely registered, with monotonic counters.
func TestStatsCoherentUnderConcurrency(t *testing.T) {
	s := schema.MustNew(
		schema.NewRelation("R", "a", "b"),
		schema.NewRelation("S", "b", "c"),
	)
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "2")
	d.MustAddRow("S", "2", "3")
	eng := New(d)
	if _, err := eng.EnableHistory(HistoryOptions{}); err != nil {
		t.Fatal(err)
	}
	view := ra.Project{Input: ra.Join{Left: ra.Base("R"), Right: ra.Base("S")}, Attrs: []string{"a", "c"}}
	if err := eng.Register("V", view, Options{}); err != nil {
		t.Fatal(err)
	}

	const (
		writes  = 40
		readers = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < writes; i++ {
			if err := eng.Update(func(db *table.Database) error {
				return db.Add("R", table.MustParseTuple(fmt.Sprint(100+i), "2"))
			}); err != nil {
				errs <- err
				return
			}
			if _, _, err := eng.CommitWithDeltas(fmt.Sprintf("w%d", i)); err != nil {
				errs <- err
				return
			}
			// Churn the registration set so Stats races a disappearing and
			// reappearing view, not just counter increments.
			if i%10 == 9 {
				eng.Unregister("V2")
				if err := eng.Register("V2", ra.Base("R"), Options{}); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastUpdates uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := eng.Stats()
				vs, ok := st.Views["V"]
				if !ok {
					errs <- fmt.Errorf("reader %d: registered view V missing from Stats", r)
					return
				}
				if vs.Updates < lastUpdates {
					errs <- fmt.Errorf("reader %d: view update counter went backwards: %d -> %d", r, lastUpdates, vs.Updates)
					return
				}
				lastUpdates = vs.Updates
				if _, err := eng.Answers("V"); err != nil {
					errs <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				if _, err := eng.ViewStats("V"); err != nil {
					errs <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				eng.Views()
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
