// Package valuation implements valuations of nulls: mappings
// v : Null(D) → Const that replace marked nulls by constants.  Valuations
// are the engine of both semantics of incompleteness in the paper,
//
//	[[D]]cwa = { v(D)            | v a valuation }
//	[[D]]owa = { D' ⊇ v(D)       | v a valuation },
//
// and of the ≈C conditions of Section 5.1 (replacing nulls by fresh
// constants outside a finite set C).
package valuation

import (
	"fmt"
	"math"
	"slices"

	"incdata/internal/table"
	"incdata/internal/value"
)

// Valuation maps nulls to constants.  Nulls not in its domain are left
// untouched by Apply* methods, so a Valuation can be partial.
type Valuation map[value.Value]value.Value

// New returns an empty valuation.
func New() Valuation { return Valuation{} }

// Set binds a null to a constant; it fails when the key is not a null or
// the image is not a constant.
func (v Valuation) Set(null, con value.Value) error {
	if !null.IsNull() {
		return fmt.Errorf("valuation: key %v is not a null", null)
	}
	if !con.IsConst() {
		return fmt.Errorf("valuation: image %v is not a constant", con)
	}
	v[null] = con
	return nil
}

// MustSet is Set that panics on error.
func (v Valuation) MustSet(null, con value.Value) {
	if err := v.Set(null, con); err != nil {
		panic(err)
	}
}

// Clone returns a copy of the valuation.
func (v Valuation) Clone() Valuation {
	out := make(Valuation, len(v))
	for k, c := range v {
		out[k] = c
	}
	return out
}

// ApplyValue returns v(x): the image of a null in the valuation's domain,
// and any other value unchanged.
func (v Valuation) ApplyValue(x value.Value) value.Value {
	if x.IsNull() {
		if c, ok := v[x]; ok {
			return c
		}
	}
	return x
}

// ApplyTuple applies the valuation to every field of a tuple.
func (v Valuation) ApplyTuple(t table.Tuple) table.Tuple {
	return t.Map(v.ApplyValue)
}

// ApplyRelation applies the valuation to every tuple of a relation.
// Null-free tuples are shared with r (together with their stored hash keys)
// rather than copied, so applying a valuation to a mostly-complete relation
// allocates only for the tuples it actually changes.
func (v Valuation) ApplyRelation(r *table.Relation) *table.Relation {
	return r.Map(v.ApplyValue)
}

// ApplyDatabase returns v(D), sharing null-free tuples with d (see
// ApplyRelation).  World enumeration over databases with few nulls therefore
// costs per-world allocations proportional to the nulls, not the database.
func (v Valuation) ApplyDatabase(d *table.Database) *table.Database {
	return d.Map(v.ApplyValue)
}

// TotalOn reports whether the valuation binds every null of D.
func (v Valuation) TotalOn(d *table.Database) bool {
	for n := range d.Nulls() {
		if _, ok := v[n]; !ok {
			return false
		}
	}
	return true
}

// Domain returns the nulls bound by the valuation, deterministically
// ordered.
func (v Valuation) Domain() []value.Value {
	out := make([]value.Value, 0, len(v))
	for k := range v {
		out = append(out, k)
	}
	slices.SortFunc(out, value.Compare)
	return out
}

// Image returns the set of constants used by the valuation.
func (v Valuation) Image() map[value.Value]bool {
	out := map[value.Value]bool{}
	for _, c := range v {
		out[c] = true
	}
	return out
}

// Equal reports whether two valuations are identical mappings.
func (v Valuation) Equal(o Valuation) bool {
	if len(v) != len(o) {
		return false
	}
	for k, c := range v {
		if oc, ok := o[k]; !ok || oc != c {
			return false
		}
	}
	return true
}

// String renders the valuation deterministically as {⊥1↦a, ⊥2↦b}.
func (v Valuation) String() string {
	dom := v.Domain()
	s := "{"
	for i, n := range dom {
		if i > 0 {
			s += ", "
		}
		s += n.String() + "↦" + v[n].String()
	}
	return s + "}"
}

// Fresh returns a valuation sending each of the given nulls to a distinct
// fresh constant not belonging to avoid.  This realises the condition of
// Section 5.1: for every finite C ⊂ Const there is a valuation v with
// v(D) ≈C D (replace nulls by distinct constants outside C).
//
// Fresh constants are strings of the form "@fresh<k>"; callers that need a
// different shape can post-process the valuation.
func Fresh(nulls []value.Value, avoid map[value.Value]bool) Valuation {
	v := New()
	next := 0
	used := func(c value.Value) bool {
		if avoid[c] {
			return true
		}
		for _, img := range v {
			if img == c {
				return true
			}
		}
		return false
	}
	sorted := append([]value.Value(nil), nulls...)
	slices.SortFunc(sorted, value.Compare)
	for _, n := range sorted {
		if !n.IsNull() {
			continue
		}
		for {
			c := value.String(fmt.Sprintf("@fresh%d", next))
			next++
			if !used(c) {
				v[n] = c
				break
			}
		}
	}
	return v
}

// FreshFor is Fresh applied to all nulls of D, avoiding all constants of D.
func FreshFor(d *table.Database) Valuation {
	return Fresh(d.SortedNulls(), d.Consts())
}

// Enumerate calls fn with every total valuation of the given nulls into the
// given constant domain, in a deterministic order.  It stops early (and
// reports false) when fn returns false.  The number of valuations is
// |domain|^|nulls|, so callers must keep both small; this is the
// world-enumeration ground truth used by the certain-answer experiments.
//
// The Valuation passed to fn is reused across calls; fn must Clone it if it
// wants to retain it.
func Enumerate(nulls []value.Value, domain []value.Value, fn func(Valuation) bool) bool {
	ns := make([]value.Value, 0, len(nulls))
	for _, n := range nulls {
		if n.IsNull() {
			ns = append(ns, n)
		}
	}
	slices.SortFunc(ns, value.Compare)

	dom := make([]value.Value, 0, len(domain))
	for _, c := range domain {
		if c.IsConst() {
			dom = append(dom, c)
		}
	}
	slices.SortFunc(dom, value.Compare)

	if len(ns) == 0 {
		return fn(New())
	}
	if len(dom) == 0 {
		return true // no valuations exist
	}

	v := New()
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(ns) {
			return fn(v)
		}
		for _, c := range dom {
			v[ns[i]] = c
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// Count returns the number of total valuations of k nulls into a domain of
// size d (d^k), saturating at math.MaxInt when the true count would
// overflow.  Saturation keeps world-count bounds meaningful: any positive
// MaxWorlds-style limit still trips, because math.MaxInt exceeds every
// representable bound.
func Count(k, d int) int {
	if k == 0 {
		return 1
	}
	if d == 0 {
		return 0
	}
	n := 1
	for i := 0; i < k; i++ {
		if n > math.MaxInt/d {
			return math.MaxInt
		}
		n *= d
	}
	return n
}
