package valuation

import (
	"math"
	"testing"

	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

func sampleDB() *table.Database {
	s := schema.MustNew(schema.NewRelation("R", "a", "b"))
	d := table.NewDatabase(s)
	d.MustAddRow("R", "1", "⊥1")
	d.MustAddRow("R", "⊥2", "2")
	return d
}

func TestSetAndApply(t *testing.T) {
	v := New()
	v.MustSet(value.Null(1), value.Int(7))
	if got := v.ApplyValue(value.Null(1)); got != value.Int(7) {
		t.Errorf("ApplyValue = %v", got)
	}
	if got := v.ApplyValue(value.Null(2)); got != value.Null(2) {
		t.Errorf("unbound null should stay, got %v", got)
	}
	if got := v.ApplyValue(value.Int(3)); got != value.Int(3) {
		t.Errorf("constants should be fixed, got %v", got)
	}
	if err := v.Set(value.Int(1), value.Int(2)); err == nil {
		t.Error("Set with constant key should fail")
	}
	if err := v.Set(value.Null(1), value.Null(2)); err == nil {
		t.Error("Set with null image should fail")
	}
}

func TestMustSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSet should panic")
		}
	}()
	New().MustSet(value.Int(1), value.Int(1))
}

func TestApplyTupleRelationDatabase(t *testing.T) {
	d := sampleDB()
	v := New()
	v.MustSet(value.Null(1), value.Int(10))
	v.MustSet(value.Null(2), value.Int(20))
	if !v.TotalOn(d) {
		t.Error("valuation should be total on d")
	}
	vd := v.ApplyDatabase(d)
	if !vd.IsComplete() {
		t.Error("v(D) should be complete")
	}
	r := vd.Relation("R")
	if !r.Contains(table.MustParseTuple("1", "10")) || !r.Contains(table.MustParseTuple("20", "2")) {
		t.Errorf("v(D) = %v", vd)
	}
	tp := v.ApplyTuple(table.MustParseTuple("⊥1", "⊥3"))
	if !tp.Equal(table.MustParseTuple("10", "⊥3")) {
		t.Errorf("ApplyTuple = %v", tp)
	}
	vr := v.ApplyRelation(d.Relation("R"))
	if vr.Len() != 2 {
		t.Errorf("ApplyRelation len = %d", vr.Len())
	}
	partial := New()
	partial.MustSet(value.Null(1), value.Int(1))
	if partial.TotalOn(d) {
		t.Error("partial valuation should not be total")
	}
}

func TestCloneDomainImageEqualString(t *testing.T) {
	v := New()
	v.MustSet(value.Null(2), value.Int(5))
	v.MustSet(value.Null(1), value.String("a"))
	c := v.Clone()
	c.MustSet(value.Null(3), value.Int(9))
	if len(v) != 2 {
		t.Error("Clone aliases")
	}
	dom := v.Domain()
	if len(dom) != 2 || dom[0] != value.Null(1) || dom[1] != value.Null(2) {
		t.Errorf("Domain = %v", dom)
	}
	img := v.Image()
	if len(img) != 2 || !img[value.Int(5)] || !img[value.String("a")] {
		t.Errorf("Image = %v", img)
	}
	if !v.Equal(v.Clone()) {
		t.Error("Equal should hold for clones")
	}
	if v.Equal(c) {
		t.Error("different valuations should not be Equal")
	}
	w := v.Clone()
	w.MustSet(value.Null(2), value.Int(6))
	if v.Equal(w) {
		t.Error("different image should not be Equal")
	}
	if v.String() != "{⊥1↦a, ⊥2↦5}" {
		t.Errorf("String = %q", v.String())
	}
}

func TestFresh(t *testing.T) {
	nulls := []value.Value{value.Null(3), value.Null(1), value.Int(5)}
	avoid := map[value.Value]bool{value.String("@fresh0"): true}
	v := Fresh(nulls, avoid)
	if len(v) != 2 {
		t.Fatalf("Fresh bound %d nulls", len(v))
	}
	if v[value.Null(1)] == v[value.Null(3)] {
		t.Error("fresh constants must be pairwise distinct")
	}
	for _, c := range v {
		if avoid[c] {
			t.Errorf("fresh constant %v is in avoid set", c)
		}
		if !c.IsConst() {
			t.Errorf("fresh image %v is not a constant", c)
		}
	}
}

func TestFreshFor(t *testing.T) {
	d := sampleDB()
	v := FreshFor(d)
	if !v.TotalOn(d) {
		t.Error("FreshFor should be total")
	}
	vd := v.ApplyDatabase(d)
	if !vd.IsComplete() {
		t.Error("FreshFor(D)(D) should be complete")
	}
	// fresh constants avoid the constants of D
	for _, c := range v {
		if d.Consts()[c] {
			t.Errorf("fresh constant %v collides with Const(D)", c)
		}
	}
}

func TestEnumerate(t *testing.T) {
	nulls := []value.Value{value.Null(1), value.Null(2)}
	domain := []value.Value{value.Int(1), value.Int(2), value.Int(3)}
	var seen []Valuation
	done := Enumerate(nulls, domain, func(v Valuation) bool {
		seen = append(seen, v.Clone())
		return true
	})
	if !done {
		t.Error("Enumerate should complete")
	}
	if len(seen) != 9 {
		t.Fatalf("expected 9 valuations, got %d", len(seen))
	}
	// all distinct and all total
	for i := range seen {
		if len(seen[i]) != 2 {
			t.Errorf("valuation %v not total", seen[i])
		}
		for j := i + 1; j < len(seen); j++ {
			if seen[i].Equal(seen[j]) {
				t.Errorf("duplicate valuation %v", seen[i])
			}
		}
	}
}

func TestEnumerateEdgeCases(t *testing.T) {
	// No nulls: exactly one (empty) valuation.
	count := 0
	Enumerate(nil, []value.Value{value.Int(1)}, func(v Valuation) bool {
		count++
		if len(v) != 0 {
			t.Error("empty valuation expected")
		}
		return true
	})
	if count != 1 {
		t.Errorf("expected 1 call, got %d", count)
	}
	// Empty domain with nulls: no valuations.
	count = 0
	Enumerate([]value.Value{value.Null(1)}, nil, func(Valuation) bool { count++; return true })
	if count != 0 {
		t.Errorf("expected 0 calls, got %d", count)
	}
	// Early stop.
	count = 0
	finished := Enumerate([]value.Value{value.Null(1)}, []value.Value{value.Int(1), value.Int(2)}, func(Valuation) bool {
		count++
		return false
	})
	if finished || count != 1 {
		t.Errorf("early stop failed: finished=%v count=%d", finished, count)
	}
	// Non-null entries in inputs are filtered.
	count = 0
	Enumerate([]value.Value{value.Int(9)}, []value.Value{value.Null(1), value.Int(1)}, func(v Valuation) bool {
		count++
		return true
	})
	if count != 1 {
		t.Errorf("expected single empty valuation, got %d", count)
	}
}

func TestCount(t *testing.T) {
	if Count(0, 5) != 1 || Count(3, 0) != 0 || Count(2, 3) != 9 || Count(10, 2) != 1024 {
		t.Error("Count wrong")
	}
}

func TestCountSaturatesAtMaxInt(t *testing.T) {
	cases := []struct{ k, d int }{
		{100, 100},       // astronomically large
		{63, 2},          // one doubling past the int63 range
		{2, math.MaxInt}, // d itself at the limit
		{40, 1000},       // |dom|^#nulls with many nulls
		{math.MaxInt, 2}, // pathological null count
	}
	for _, c := range cases {
		if got := Count(c.k, c.d); got != math.MaxInt {
			t.Errorf("Count(%d,%d) = %d, want math.MaxInt", c.k, c.d, got)
		}
	}
	// Saturated counts must still exceed any positive bound.
	if Count(40, 1000) <= 1<<40 {
		t.Error("saturated count does not dominate large bounds")
	}
}
