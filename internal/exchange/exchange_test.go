package exchange

import (
	"strings"
	"testing"

	"incdata/internal/cq"
	"incdata/internal/schema"
	"incdata/internal/table"
)

// paperMapping is the mapping from the paper's introduction:
// Order(i,p) → Cust(x), Pref(x,p) with x existential.
func paperMapping() Mapping {
	src := schema.MustNew(schema.NewRelation("Order", "o_id", "product"))
	tgt := schema.MustNew(
		schema.NewRelation("Cust", "cust"),
		schema.NewRelation("Pref", "cust", "product"),
	)
	dep := Dependency{
		Name: "order-to-cust",
		Body: []cq.Atom{cq.NewAtom("Order", cq.V("i"), cq.V("p"))},
		Head: []cq.Atom{
			cq.NewAtom("Cust", cq.V("x")),
			cq.NewAtom("Pref", cq.V("x"), cq.V("p")),
		},
		Existential: []string{"x"},
	}
	return Mapping{Source: src, Target: tgt, Dependencies: []Dependency{dep}}
}

func sourceOrders(rows ...[]string) *table.Database {
	src := schema.MustNew(schema.NewRelation("Order", "o_id", "product"))
	d := table.NewDatabase(src)
	for _, r := range rows {
		d.MustAddRow("Order", r...)
	}
	return d
}

func TestChasePaperExample(t *testing.T) {
	m := paperMapping()
	source := sourceOrders([]string{"oid1", "pr1"}, []string{"oid2", "pr2"})
	target, err := m.Chase(source)
	if err != nil {
		t.Fatal(err)
	}
	cust := target.Relation("Cust")
	pref := target.Relation("Pref")
	if cust.Len() != 2 || pref.Len() != 2 {
		t.Fatalf("chase should create 2 Cust and 2 Pref tuples: %v", target)
	}
	// Each Pref tuple pairs a null with the right product, and the null is
	// shared with the corresponding Cust tuple (the whole point of marked
	// nulls).
	nulls := target.Nulls()
	if len(nulls) != 2 {
		t.Fatalf("chase should invent exactly 2 distinct nulls, got %v", nulls)
	}
	sharedOK := 0
	pref.Each(func(tp table.Tuple) bool {
		if tp[0].IsNull() && cust.Contains(table.NewTuple(tp[0])) {
			sharedOK++
		}
		return true
	})
	if sharedOK != 2 {
		t.Error("each invented null must appear in both Cust and Pref")
	}
	if !target.IsCodd() {
		// Each null appears twice (Cust and Pref) — so the result is a naïve
		// database, not a Codd database.  That is expected.
		t.Log("target is a naïve database with repeated nulls (expected)")
	} else {
		t.Error("chase output should reuse each invented null across Cust and Pref")
	}
}

func TestChaseDeterministicFreshNulls(t *testing.T) {
	m := paperMapping()
	// Source nulls must not clash with invented nulls.
	source := sourceOrders([]string{"oid1", "⊥5"})
	target, err := m.Chase(source)
	if err != nil {
		t.Fatal(err)
	}
	for n := range target.Nulls() {
		if n.NullID() == 5 && target.Relation("Cust").Contains(table.NewTuple(n)) {
			t.Error("invented null must not reuse the source null id")
		}
	}
	// The source null is copied into Pref's product column.
	found := false
	target.Relation("Pref").Each(func(tp table.Tuple) bool {
		if tp[1].IsNull() && tp[1].NullID() == 5 {
			found = true
		}
		return true
	})
	if !found {
		t.Error("source null should be copied to the target")
	}
}

func TestCertainAnswersOverExchangedData(t *testing.T) {
	m := paperMapping()
	source := sourceOrders([]string{"oid1", "pr1"}, []string{"oid2", "pr2"})
	// q(p) :- Pref(x, p): products someone prefers — certain for both products.
	q := cq.Single(cq.Query{Name: "q", Head: []string{"p"}, Body: []cq.Atom{cq.NewAtom("Pref", cq.V("x"), cq.V("p"))}})
	ans, err := m.CertainAnswers(q, source)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 2 || !ans.Contains(table.MustParseTuple("pr1")) || !ans.Contains(table.MustParseTuple("pr2")) {
		t.Errorf("certain answers = %v", ans)
	}
	// q2(x) :- Cust(x): no customer id is certain (they are all nulls).
	q2 := cq.Single(cq.Query{Name: "q2", Head: []string{"x"}, Body: []cq.Atom{cq.NewAtom("Cust", cq.V("x"))}})
	ans2, err := m.CertainAnswers(q2, source)
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Len() != 0 {
		t.Errorf("no customer constant is certain, got %v", ans2)
	}
	// Error propagation: query over a relation that does not exist.
	bad := cq.Single(cq.Query{Head: []string{"x"}, Body: []cq.Atom{cq.NewAtom("Nope", cq.V("x"))}})
	if _, err := m.CertainAnswers(bad, source); err == nil {
		t.Error("bad query should error")
	}
}

func TestValidation(t *testing.T) {
	m := paperMapping()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dependency-level errors.
	cases := []Dependency{
		{Name: "empty"},
		{Name: "exist-in-body",
			Body:        []cq.Atom{cq.NewAtom("Order", cq.V("x"), cq.V("p"))},
			Head:        []cq.Atom{cq.NewAtom("Cust", cq.V("x"))},
			Existential: []string{"x"}},
		{Name: "free-head-var",
			Body: []cq.Atom{cq.NewAtom("Order", cq.V("i"), cq.V("p"))},
			Head: []cq.Atom{cq.NewAtom("Cust", cq.V("z"))}},
	}
	for _, dep := range cases {
		if err := dep.Validate(); err == nil {
			t.Errorf("dependency %q should be invalid", dep.Name)
		}
	}
	// Mapping-level errors: wrong schema references and arities.
	src := m.Source
	tgt := m.Target
	badMappings := []Mapping{
		{Source: src, Target: tgt, Dependencies: []Dependency{{
			Name: "bad-body-rel",
			Body: []cq.Atom{cq.NewAtom("Missing", cq.V("i"))},
			Head: []cq.Atom{cq.NewAtom("Cust", cq.V("i"))}}}},
		{Source: src, Target: tgt, Dependencies: []Dependency{{
			Name: "bad-body-arity",
			Body: []cq.Atom{cq.NewAtom("Order", cq.V("i"))},
			Head: []cq.Atom{cq.NewAtom("Cust", cq.V("i"))}}}},
		{Source: src, Target: tgt, Dependencies: []Dependency{{
			Name: "bad-head-rel",
			Body: []cq.Atom{cq.NewAtom("Order", cq.V("i"), cq.V("p"))},
			Head: []cq.Atom{cq.NewAtom("Missing", cq.V("i"))}}}},
		{Source: src, Target: tgt, Dependencies: []Dependency{{
			Name: "bad-head-arity",
			Body: []cq.Atom{cq.NewAtom("Order", cq.V("i"), cq.V("p"))},
			Head: []cq.Atom{cq.NewAtom("Cust", cq.V("i"), cq.V("p"))}}}},
		{Source: src, Target: tgt, Dependencies: []Dependency{{Name: "invalid-dep"}}},
	}
	for _, bm := range badMappings {
		if err := bm.Validate(); err == nil {
			t.Errorf("mapping with %q should be invalid", bm.Dependencies[0].Name)
		}
		if _, err := bm.Chase(sourceOrders([]string{"o", "p"})); err == nil {
			t.Errorf("chase of invalid mapping %q should fail", bm.Dependencies[0].Name)
		}
	}
}

func TestDependencyString(t *testing.T) {
	m := paperMapping()
	s := m.Dependencies[0].String()
	if !strings.Contains(s, "Order(i,p)") || !strings.Contains(s, "→") || !strings.Contains(s, "Pref(x,p)") {
		t.Errorf("String = %q", s)
	}
}

func TestChaseConstantsInHead(t *testing.T) {
	src := schema.MustNew(schema.NewRelation("Order", "o_id", "product"))
	tgt := schema.MustNew(schema.NewRelation("Tagged", "o_id", "tag"))
	m := Mapping{Source: src, Target: tgt, Dependencies: []Dependency{{
		Name: "tag",
		Body: []cq.Atom{cq.NewAtom("Order", cq.V("i"), cq.V("p"))},
		Head: []cq.Atom{cq.NewAtom("Tagged", cq.V("i"), cq.CString("new"))},
	}}}
	target, err := m.Chase(sourceOrders([]string{"oid1", "pr1"}))
	if err != nil {
		t.Fatal(err)
	}
	if !target.Relation("Tagged").Contains(table.MustParseTuple("oid1", "new")) {
		t.Errorf("chase with head constant wrong: %v", target)
	}
}

func TestChaseEmptySource(t *testing.T) {
	m := paperMapping()
	target, err := m.Chase(sourceOrders())
	if err != nil {
		t.Fatal(err)
	}
	if target.TotalTuples() != 0 {
		t.Errorf("empty source should chase to empty target, got %v", target)
	}
}
