// Package exchange implements schema mappings and data exchange: the
// source-to-target tuple-generating dependencies (st-tgds) of the paper's
// introduction, such as
//
//	Order(i,p) → ∃x Cust(x) ∧ Pref(x,p),
//
// and the chase procedure that materialises a canonical universal solution
// populated with marked (naïve) nulls — the scenario that motivates the
// marked-null data model and in which certain answers are the standard
// query-answering semantics.
//
// The paper uses tools like Clio/++Spicy as the source of such instances;
// this package is the in-repo substitute producing exactly the same shape
// of output (naïve databases with invented marked nulls).
package exchange

import (
	"fmt"

	"incdata/internal/cq"
	"incdata/internal/schema"
	"incdata/internal/table"
	"incdata/internal/value"
)

// Dependency is a source-to-target tgd: Body (over the source schema)
// implies ∃ Existential. Head (over the target schema).  Variables shared
// between Body and Head are universally quantified; Existential lists the
// head variables that are existentially quantified and therefore become
// fresh marked nulls for every match of the body.
type Dependency struct {
	Name        string
	Body        []cq.Atom
	Head        []cq.Atom
	Existential []string
}

// Validate checks that every non-existential head variable occurs in the
// body and that the existential variables do not occur in the body.
func (d Dependency) Validate() error {
	if len(d.Body) == 0 || len(d.Head) == 0 {
		return fmt.Errorf("exchange: dependency %q needs a nonempty body and head", d.Name)
	}
	bodyVars := map[string]bool{}
	for _, a := range d.Body {
		for _, t := range a.Args {
			if t.IsVar {
				bodyVars[t.Var] = true
			}
		}
	}
	exist := map[string]bool{}
	for _, v := range d.Existential {
		if bodyVars[v] {
			return fmt.Errorf("exchange: existential variable %q of %q occurs in the body", v, d.Name)
		}
		exist[v] = true
	}
	for _, a := range d.Head {
		for _, t := range a.Args {
			if t.IsVar && !bodyVars[t.Var] && !exist[t.Var] {
				return fmt.Errorf("exchange: head variable %q of %q is neither universal nor existential", t.Var, d.Name)
			}
		}
	}
	return nil
}

// String renders the dependency.
func (d Dependency) String() string {
	body := cq.Query{Body: d.Body}.String()
	head := cq.Query{Body: d.Head}.String()
	// Strip the "Q() :- " prefixes for readability.
	return body[len("Q() :- "):] + " → " + head[len("Q() :- "):]
}

// Mapping is a schema mapping: a source schema, a target schema, and a set
// of st-tgds.
type Mapping struct {
	Source       *schema.Schema
	Target       *schema.Schema
	Dependencies []Dependency
}

// Validate checks all dependencies and that their atoms refer to the right
// schemas with the right arities.
func (m Mapping) Validate() error {
	for _, dep := range m.Dependencies {
		if err := dep.Validate(); err != nil {
			return err
		}
		for _, a := range dep.Body {
			rs, ok := m.Source.Relation(a.Rel)
			if !ok {
				return fmt.Errorf("exchange: body atom %s of %q is not in the source schema", a.Rel, dep.Name)
			}
			if rs.Arity() != len(a.Args) {
				return fmt.Errorf("exchange: body atom %s of %q has wrong arity", a.Rel, dep.Name)
			}
		}
		for _, a := range dep.Head {
			rs, ok := m.Target.Relation(a.Rel)
			if !ok {
				return fmt.Errorf("exchange: head atom %s of %q is not in the target schema", a.Rel, dep.Name)
			}
			if rs.Arity() != len(a.Args) {
				return fmt.Errorf("exchange: head atom %s of %q has wrong arity", a.Rel, dep.Name)
			}
		}
	}
	return nil
}

// Chase materialises the canonical universal solution: for every dependency
// and every match of its body in the source, the head atoms are added to
// the target with fresh marked nulls for the existential variables (one
// fresh null per existential variable per match).  Source values (including
// source nulls) are copied as-is.
func (m Mapping) Chase(source *table.Database) (*table.Database, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	target := table.NewDatabase(m.Target)
	// Fresh nulls must not clash with nulls already present in the source.
	nextNull := uint64(1)
	for n := range source.Nulls() {
		if n.NullID() >= nextNull {
			nextNull = n.NullID() + 1
		}
	}
	for _, dep := range m.Dependencies {
		bodyQuery := cq.Query{Name: dep.Name, Body: dep.Body}
		var matches []map[string]value.Value
		// Collect matches first so that null invention is deterministic in
		// the canonical tuple order of the source.
		err := forEachMatch(bodyQuery, source, func(env map[string]value.Value) {
			cp := make(map[string]value.Value, len(env))
			for k, v := range env {
				cp[k] = v
			}
			matches = append(matches, cp)
		})
		if err != nil {
			return nil, err
		}
		for _, env := range matches {
			// Invent fresh nulls for the existential variables of this match.
			for _, ev := range dep.Existential {
				env[ev] = value.Null(nextNull)
				nextNull++
			}
			for _, a := range dep.Head {
				t := make(table.Tuple, len(a.Args))
				for i, arg := range a.Args {
					if arg.IsVar {
						v, ok := env[arg.Var]
						if !ok {
							return nil, fmt.Errorf("exchange: unbound head variable %q in %q", arg.Var, dep.Name)
						}
						t[i] = v
					} else {
						t[i] = arg.Const
					}
				}
				if err := target.Add(a.Rel, t); err != nil {
					return nil, err
				}
			}
		}
	}
	return target, nil
}

// forEachMatch enumerates the matches of a Boolean conjunctive query body
// on a database by evaluating the query with all its variables as head.
func forEachMatch(q cq.Query, d *table.Database, fn func(map[string]value.Value)) error {
	vars := q.Variables()
	full := cq.Query{Name: q.Name, Head: vars, Body: q.Body}
	rel, err := full.Eval(d)
	if err != nil {
		return err
	}
	for _, t := range rel.Tuples() {
		env := make(map[string]value.Value, len(vars))
		for i, v := range vars {
			env[v] = t[i]
		}
		fn(env)
	}
	return nil
}

// CertainAnswers computes certain answers to a UCQ over the target schema
// in the data-exchange sense: the query is naïvely evaluated on the chased
// (canonical universal) solution and tuples with nulls are dropped.  For
// UCQs this coincides with certain answers over all solutions (the standard
// result of data-exchange theory reflected in Section 2 of the paper).
func (m Mapping) CertainAnswers(q cq.UCQ, source *table.Database) (*table.Relation, error) {
	target, err := m.Chase(source)
	if err != nil {
		return nil, err
	}
	ans, err := q.Eval(target)
	if err != nil {
		return nil, err
	}
	return ans.CompletePart(), nil
}
